// The resource-governor layer: deadline/budget/cancel semantics of
// ResourceGovernor itself, exception containment and cooperative
// cancellation in ThreadPool, and — the property the whole design hangs on —
// that a cancelled evaluation never leaks a partial answer: the call errors,
// and a governor-free re-run on the same evaluator is byte-identical to a
// run that was never governed at all.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/resource.h"
#include "common/thread_pool.h"
#include "db/database.h"
#include "db/generators.h"
#include "eval/bounded_eval.h"
#include "eval/eso_eval.h"
#include "eval/naive_eval.h"
#include "logic/parser.h"
#include "sat/solver.h"

namespace bvq {
namespace {

// --- ResourceGovernor units ------------------------------------------------------

TEST(ResourceGovernorTest, ChargeReleasePeakAccounting) {
  ResourceGovernor gov;  // no limits: accounting only
  EXPECT_TRUE(gov.Charge(100).ok());
  EXPECT_TRUE(gov.Charge(50).ok());
  gov.Release(100);
  EXPECT_TRUE(gov.NoteTransient(500).ok());

  const ResourceStats stats = gov.stats();
  EXPECT_EQ(stats.mem_current_bytes, 50u);
  EXPECT_EQ(stats.mem_peak_bytes, 550u);  // 50 live + 500 transient
  EXPECT_FALSE(stats.stopped);
  EXPECT_GE(stats.charges, 3u);
  EXPECT_TRUE(gov.Check().ok());
}

TEST(ResourceGovernorTest, BudgetTripIsSticky) {
  ResourceGovernor::Limits limits;
  limits.mem_budget_bytes = 1024;
  ResourceGovernor gov(limits);
  EXPECT_TRUE(gov.Charge(512).ok());
  const Status trip = gov.Charge(1024);
  ASSERT_FALSE(trip.ok());
  EXPECT_EQ(trip.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(gov.stopped());
  // Sticky: every subsequent observation reports the same trip, even after
  // the account drains back under budget.
  gov.Release(1536);
  EXPECT_EQ(gov.Check().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(gov.Charge(1).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(gov.stats().stop_code, StatusCode::kResourceExhausted);

  gov.Reset(ResourceGovernor::Limits{});
  EXPECT_FALSE(gov.stopped());
  EXPECT_TRUE(gov.Check().ok());
  EXPECT_EQ(gov.stats().mem_current_bytes, 0u);
}

TEST(ResourceGovernorTest, DeadlineTrips) {
  ResourceGovernor::Limits limits;
  limits.deadline_ms = 1;
  ResourceGovernor gov(limits);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const Status s = gov.Check();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(gov.stopped());
  EXPECT_EQ(gov.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(gov.stop_flag()->load());
}

TEST(ResourceGovernorTest, CancelTripsWithReason) {
  ResourceGovernor gov;
  gov.Cancel("client went away");
  const Status s = gov.Check();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
  EXPECT_NE(s.message().find("client went away"), std::string::npos);
  // First trip wins: a later deadline/budget cause cannot overwrite it.
  gov.Cancel("second reason");
  EXPECT_NE(gov.status().message().find("client went away"),
            std::string::npos);
}

// --- composite tokens: child governor layered over a session parent --------------

TEST(CompositeGovernorTest, ParentDeadlineSurvivesZeroChildOverlay) {
  // Regression for the serving layer's token composition: a per-query
  // overlay of `deadline_ms = 0` means "no additional limit" — it must NOT
  // erase the session-level deadline carried by the parent.
  ResourceGovernor::Limits session_limits;
  session_limits.deadline_ms = 1;
  ResourceGovernor session(session_limits);

  ResourceGovernor query;                    // per-query: no limits of its own
  query.Reset(ResourceGovernor::Limits{});   // explicit 0-overlay
  query.set_parent(&session);

  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const Status s = query.Check();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(query.stopped());
  EXPECT_TRUE(session.stopped());

  // Reset with fresh limits keeps the parent link (pool reuse path).
  query.Reset(ResourceGovernor::Limits{});
  EXPECT_EQ(query.parent(), &session);
  EXPECT_FALSE(query.Check().ok());  // parent is still tripped
}

TEST(CompositeGovernorTest, ParentCancelPropagatesToChild) {
  ResourceGovernor session;
  ResourceGovernor query;
  query.set_parent(&session);
  EXPECT_TRUE(query.Check().ok());

  session.Cancel("session closed");
  const Status s = query.Check();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
  EXPECT_NE(s.message().find("session closed"), std::string::npos);
}

TEST(CompositeGovernorTest, ChargesForwardIntoParentAccount) {
  ResourceGovernor session;
  ResourceGovernor query;
  query.set_parent(&session);

  EXPECT_TRUE(query.Charge(1000).ok());
  EXPECT_EQ(query.stats().mem_current_bytes, 1000u);
  EXPECT_EQ(session.stats().mem_current_bytes, 1000u);
  EXPECT_TRUE(query.NoteTransient(500).ok());
  EXPECT_GE(session.stats().mem_peak_bytes, 1500u);
  query.Release(1000);
  EXPECT_EQ(query.stats().mem_current_bytes, 0u);
  EXPECT_EQ(session.stats().mem_current_bytes, 0u);

  // The parent's budget bounds the composite: a child with no budget of its
  // own still trips when the aggregate account exceeds the session's.
  ResourceGovernor::Limits tight;
  tight.mem_budget_bytes = 512;
  ResourceGovernor tight_session(tight);
  ResourceGovernor child;
  child.set_parent(&tight_session);
  const Status over = child.Charge(1024);
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.code(), StatusCode::kResourceExhausted);
}

TEST(CompositeGovernorTest, ChildBudgetTripKeepsParentAccountBalanced) {
  // Regression: Charge() used to return early when the *child's* own budget
  // tripped, skipping the parent charge — while Release() always forwarded.
  // The caller's scoped unwind then released bytes the session governor was
  // never charged, wrapping its live-byte account to ~2^64 and poisoning
  // every later query of that session with ResourceExhausted.
  ResourceGovernor::Limits session_limits;
  session_limits.mem_budget_bytes = std::size_t{1} << 20;
  ResourceGovernor session(session_limits);

  ResourceGovernor::Limits query_limits;
  query_limits.mem_budget_bytes = 512;
  ResourceGovernor query(query_limits);
  query.set_parent(&session);

  // Trip the child budget; the charge must stick in BOTH accounts.
  const Status over = query.Charge(1024);
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(query.stats().mem_current_bytes, 1024u);
  EXPECT_EQ(session.stats().mem_current_bytes, 1024u);
  EXPECT_FALSE(session.stopped());  // only the per-query budget blew

  // The unwind drains both accounts to exactly zero — no underflow.
  query.Release(1024);
  EXPECT_EQ(query.stats().mem_current_bytes, 0u);
  EXPECT_EQ(session.stats().mem_current_bytes, 0u);

  // The session is not poisoned: the next pooled query charges and
  // releases cleanly under the session budget.
  query.Reset(query_limits);
  EXPECT_TRUE(query.Charge(256).ok());
  EXPECT_TRUE(session.Check().ok());
  query.Release(256);
  EXPECT_EQ(session.stats().mem_current_bytes, 0u);
}

TEST(ResourceGovernorTest, ScopedChargeReleasesOnDestruction) {
  ResourceGovernor gov;
  {
    ScopedCharge charge;
    EXPECT_TRUE(charge.Add(&gov, 300).ok());
    EXPECT_TRUE(charge.Add(&gov, 200).ok());
    EXPECT_EQ(gov.stats().mem_current_bytes, 500u);
    EXPECT_EQ(charge.bytes(), 500u);
  }
  EXPECT_EQ(gov.stats().mem_current_bytes, 0u);
  EXPECT_EQ(gov.stats().mem_peak_bytes, 500u);

  // Null governor: a no-op at every call site.
  ScopedCharge noop;
  EXPECT_TRUE(noop.Add(nullptr, 12345).ok());
}

// --- ThreadPool: exception containment + cancellation ----------------------------

TEST(ThreadPoolTest, KernelExceptionRethrownOnCallerAndPoolSurvives) {
  for (std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.ParallelFor(1000, 10,
                         [](std::size_t chunk, std::size_t, std::size_t) {
                           if (chunk == 3) {
                             throw std::runtime_error("kernel bug");
                           }
                         }),
        std::runtime_error)
        << threads << " threads";

    // The pool must stay fully usable: a subsequent sweep covers every
    // index exactly once and no worker deadlocked on the failed task.
    const std::size_t total = 5000;
    std::vector<std::atomic<int>> hits(total);
    pool.ParallelFor(total, 64, [&](std::size_t, std::size_t begin,
                                    std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < total; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << ", " << threads
                                   << " threads";
    }
  }
}

TEST(ThreadPoolTest, FirstExceptionWinsAcrossChunks) {
  ThreadPool pool(4);
  try {
    pool.ParallelFor(400, 1, [](std::size_t, std::size_t, std::size_t) {
      throw std::runtime_error("boom");
    });
    FAIL() << "expected a rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
}

TEST(ThreadPoolTest, CancelTokenSkipsRemainingChunks) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ThreadPool pool(threads);
    std::atomic<bool> cancel{false};
    pool.set_cancel_token(&cancel);
    std::atomic<std::size_t> executed{0};
    // Serial grain with an early trip: later chunks must be skipped, so the
    // executed count stays well short of the total.
    pool.ParallelFor(100'000, 1,
                     [&](std::size_t chunk, std::size_t, std::size_t) {
                       executed.fetch_add(1);
                       if (chunk == 0) cancel.store(true);
                     });
    EXPECT_LT(executed.load(), 100'000u) << threads << " threads";
    pool.set_cancel_token(nullptr);

    // With the token cleared the pool runs everything again.
    std::atomic<std::size_t> full{0};
    pool.ParallelFor(1000, 10, [&](std::size_t, std::size_t begin,
                                   std::size_t end) {
      full.fetch_add(end - begin);
    });
    EXPECT_EQ(full.load(), 1000u);
  }
}

TEST(ThreadPoolTest, DefaultThreadsClampsAbsurdEnvValues) {
  const char* saved = std::getenv("BVQ_THREADS");
  const std::string saved_copy = saved ? saved : "";

  ::setenv("BVQ_THREADS", "1000000", 1);
  const std::size_t clamped = ThreadPool::DefaultThreads();
  std::size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  EXPECT_LE(clamped, hw * ThreadPool::kMaxOversubscription);
  EXPECT_GE(clamped, 1u);

  // Sane values pass through untouched.
  ::setenv("BVQ_THREADS", "2", 1);
  EXPECT_EQ(ThreadPool::DefaultThreads(), 2u);

  if (saved) {
    ::setenv("BVQ_THREADS", saved_copy.c_str(), 1);
  } else {
    ::unsetenv("BVQ_THREADS");
  }
}

// --- governed evaluation: trips surface, reruns stay deterministic ---------------

constexpr char kTcQuery[] =
    "(x1,x2) [lfp T(x1,x2) . E(x1,x2) | exists x3 . (E(x1,x3) & "
    "exists x1 . (x1 = x3 & T(x1,x2)))](x1,x2)";

Database CycleDb(std::size_t n) {
  Database db(n);
  Status s = db.AddRelation("E", CycleGraph(n));
  EXPECT_TRUE(s.ok());
  return db;
}

TEST(GovernedEvalTest, CancelledRunErrorsThenRerunMatchesUngoverned) {
  Database db = CycleDb(12);
  auto query = ParseQuery(kTcQuery);
  ASSERT_TRUE(query.ok()) << query.status().ToString();

  BoundedEvalOptions opts;
  opts.num_threads = 4;
  BoundedEvaluator ungoverned(db, 3, opts);
  auto expected = ungoverned.EvaluateQuery(*query);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  ResourceGovernor gov;
  gov.Cancel("test cancellation");
  BoundedEvaluator eval(db, 3, opts);
  eval.set_governor(&gov);
  auto cancelled = eval.EvaluateQuery(*query);
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);
  // Nothing stays charged once the public call unwinds.
  EXPECT_EQ(gov.stats().mem_current_bytes, 0u);

  // The same evaluator, governor removed, must produce the byte-identical
  // answer: no partial state from the cancelled sweep may survive.
  eval.set_governor(nullptr);
  auto rerun = eval.EvaluateQuery(*query);
  ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
  EXPECT_EQ(*rerun, *expected);
}

TEST(GovernedEvalTest, TinyBudgetTripsWithResourceExhausted) {
  Database db = CycleDb(12);
  auto query = ParseQuery(kTcQuery);
  ASSERT_TRUE(query.ok());

  ResourceGovernor::Limits limits;
  limits.mem_budget_bytes = 16;  // far below one n^3 cube
  ResourceGovernor gov(limits);
  BoundedEvalOptions opts;
  opts.governor = &gov;
  BoundedEvaluator eval(db, 3, opts);
  auto result = eval.EvaluateQuery(*query);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(gov.stopped());
  EXPECT_EQ(gov.stats().mem_current_bytes, 0u);
}

TEST(GovernedEvalTest, GenerousBudgetIsByteIdenticalAndReportsPeak) {
  Database db = CycleDb(12);
  auto query = ParseQuery(kTcQuery);
  ASSERT_TRUE(query.ok());

  BoundedEvaluator ungoverned(db, 3);
  auto expected = ungoverned.EvaluateQuery(*query);
  ASSERT_TRUE(expected.ok());

  ResourceGovernor::Limits limits;
  limits.mem_budget_bytes = std::size_t{256} << 20;
  limits.deadline_ms = 60'000;
  ResourceGovernor gov(limits);
  BoundedEvalOptions opts;
  opts.governor = &gov;
  BoundedEvaluator eval(db, 3, opts);
  auto got = eval.EvaluateQuery(*query);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, *expected);

  const ResourceStats stats = gov.stats();
  EXPECT_FALSE(stats.stopped);
  EXPECT_GT(stats.mem_peak_bytes, 0u);
  EXPECT_GT(stats.mem_predicted_bytes, 0u);
  EXPECT_GT(stats.checks, 0u);
  EXPECT_EQ(stats.mem_current_bytes, 0u);  // scoped release on return
  // The prediction is an upper-bound model: the observed peak stays under
  // it on this workload (no hash history, modest memo population).
  EXPECT_LE(stats.mem_peak_bytes, stats.mem_predicted_bytes);
}

TEST(GovernedEvalTest, PfpFloydHonoursCancellationAndRerunsClean) {
  // PFP binary counter over a strict order: 2^n-cycle orbit, Floyd mode.
  Database db(8);
  RelationBuilder lt(2);
  for (Value i = 0; i < 8; ++i) {
    for (Value j = i + 1; j < 8; ++j) lt.Add(Tuple{i, j});
  }
  ASSERT_TRUE(db.AddRelation("Lt", lt.Build()).ok());
  auto query = ParseQuery(
      "(x1) [pfp X(x1) . !(X(x1) <-> forall x2 . (Lt(x2,x1) -> "
      "X(x2)))](x1)");
  ASSERT_TRUE(query.ok()) << query.status().ToString();

  BoundedEvalOptions opts;
  opts.pfp_cycle_detection = PfpCycleDetection::kFloyd;
  opts.num_threads = 2;
  BoundedEvaluator ungoverned(db, 2, opts);
  auto expected = ungoverned.EvaluateQuery(*query);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  ResourceGovernor gov;
  gov.Cancel("test cancellation");
  BoundedEvaluator eval(db, 2, opts);
  eval.set_governor(&gov);
  auto cancelled = eval.EvaluateQuery(*query);
  ASSERT_FALSE(cancelled.ok());

  eval.set_governor(nullptr);
  auto rerun = eval.EvaluateQuery(*query);
  ASSERT_TRUE(rerun.ok());
  EXPECT_EQ(*rerun, *expected);
}

TEST(GovernedEvalTest, NaiveEvaluatorHonoursGovernor) {
  Database db = CycleDb(6);
  auto query = ParseQuery(
      "(x1,x2) exists x3 . (E(x1,x3) & E(x3,x2))");
  ASSERT_TRUE(query.ok());

  NaiveEvaluator ungoverned(db);
  auto expected = ungoverned.EvaluateQuery(*query);
  ASSERT_TRUE(expected.ok());

  ResourceGovernor gov;
  gov.Cancel("test cancellation");
  NaiveEvaluator eval(db);
  eval.set_governor(&gov);
  auto cancelled = eval.EvaluateQuery(*query);
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);

  eval.set_governor(nullptr);
  auto rerun = eval.EvaluateQuery(*query);
  ASSERT_TRUE(rerun.ok());
  EXPECT_EQ(*rerun, *expected);
}

// --- governed ESO + SAT ----------------------------------------------------------

constexpr char kEsoFormula[] =
    "exists2 S/1 . (S(x1) & S(x2) & "
    "(forall x1 . forall x2 . (E(x1,x2) -> !(S(x1) & S(x2)))))";

TEST(GovernedEsoTest, IncrementalSweepHonoursCancellationAndRerunsClean) {
  Database db = CycleDb(6);
  auto f = ParseFormula(kEsoFormula);
  ASSERT_TRUE(f.ok()) << f.status().ToString();

  for (bool incremental : {true, false}) {
    EsoEvalOptions opts;
    opts.incremental = incremental;
    opts.num_threads = incremental ? 1 : 4;
    EsoEvaluator ungoverned(db, 2, opts);
    auto expected = ungoverned.Evaluate(*f);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();

    ResourceGovernor gov;
    gov.Cancel("test cancellation");
    EsoEvaluator eval(db, 2, opts);
    eval.set_governor(&gov);
    auto cancelled = eval.Evaluate(*f);
    ASSERT_FALSE(cancelled.ok()) << (incremental ? "incremental" : "scratch");
    EXPECT_EQ(gov.stats().mem_current_bytes, 0u);

    eval.set_governor(nullptr);
    auto rerun = eval.Evaluate(*f);
    ASSERT_TRUE(rerun.ok());
    EXPECT_EQ(*rerun, *expected)
        << (incremental ? "incremental" : "scratch");
  }
}

TEST(GovernedEsoTest, GenerousLimitsAreByteIdenticalWithPeak) {
  Database db = CycleDb(6);
  auto f = ParseFormula(kEsoFormula);
  ASSERT_TRUE(f.ok());

  EsoEvaluator ungoverned(db, 2);
  auto expected = ungoverned.Evaluate(*f);
  ASSERT_TRUE(expected.ok());

  ResourceGovernor::Limits limits;
  limits.mem_budget_bytes = std::size_t{256} << 20;
  ResourceGovernor gov(limits);
  EsoEvalOptions opts;
  opts.governor = &gov;
  EsoEvaluator eval(db, 2, opts);
  auto got = eval.Evaluate(*f);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, *expected);
  EXPECT_GT(gov.stats().mem_peak_bytes, 0u);
  EXPECT_FALSE(gov.stats().stopped);
}

TEST(GovernedSatTest, SolverReturnsInterruptedOnTrippedGovernor) {
  sat::Cnf cnf;
  const int a = cnf.NewVar();
  const int b = cnf.NewVar();
  cnf.AddBinary(sat::Lit(a, false), sat::Lit(b, false));
  cnf.AddBinary(sat::Lit(a, true), sat::Lit(b, false));

  ResourceGovernor gov;
  gov.Cancel("test cancellation");
  sat::SolverOptions opts;
  opts.governor = &gov;
  sat::Solver solver(opts);
  const sat::SolveResult result = solver.Solve(cnf);
  EXPECT_EQ(result.status, sat::SolveStatus::kInterrupted);

  // Without a trip the same instance solves normally, and the clause bytes
  // it charged are released when the solver dies.
  ResourceGovernor fresh;
  sat::SolverOptions ok_opts;
  ok_opts.governor = &fresh;
  {
    sat::Solver ok_solver(ok_opts);
    EXPECT_EQ(ok_solver.Solve(cnf).status, sat::SolveStatus::kSat);
    EXPECT_GT(fresh.stats().mem_current_bytes, 0u);
  }
  EXPECT_EQ(fresh.stats().mem_current_bytes, 0u);
}

}  // namespace
}  // namespace bvq
