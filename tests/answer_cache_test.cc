// Tests for the cross-query answer cache (DESIGN.md §11): database
// relation versioning, the shared FormulaInterner, ResourceGovernor's
// non-tripping TryCharge, the AnswerCache LRU itself, and the evaluator
// integration — warm hits byte-identical to the cache-off path, stale
// entries invalidated by version mismatch, governor accounts balanced
// through insert/evict/clear cycles.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/resource.h"
#include "db/database.h"
#include "db/generators.h"
#include "eval/answer_cache.h"
#include "eval/bounded_eval.h"
#include "eval/cache_snapshot.h"
#include "logic/analysis.h"
#include "logic/parser.h"

namespace bvq {
namespace {

Database PathDbWithLastP(std::size_t n) {
  Database db(n);
  EXPECT_TRUE(db.AddRelation("E", PathGraph(n)).ok());
  RelationBuilder p(1);
  Value last = static_cast<Value>(n - 1);
  p.Add(&last);
  EXPECT_TRUE(db.AddRelation("P", p.Build()).ok());
  return db;
}

AssignmentSet MustEval(const Database& db, std::size_t k, const FormulaPtr& f,
                       BoundedEvalOptions opts, EvalStats* stats = nullptr) {
  BoundedEvaluator eval(db, k, opts);
  auto r = eval.Evaluate(f);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  if (stats != nullptr) *stats = eval.stats();
  return *r;
}

FormulaPtr MustParse(const std::string& text) {
  auto f = ParseFormula(text);
  EXPECT_TRUE(f.ok()) << f.status().ToString();
  return *f;
}

// A fixpoint whose whole tree is database-resolved, so every memoized
// subtree (the root included) is exportable to the cross-query cache.
const char kReach[] = "[lfp T(x1) . P(x1) | exists x2 . (E(x1,x2) & T(x2))](x1)";

// --- Database relation versions --------------------------------------------

TEST(RelationVersionTest, VersionsAreFreshNoncesPerAddRelation) {
  Database db(4);
  EXPECT_EQ(db.relation_version("E"), 0u);  // missing = 0, never a nonce
  ASSERT_TRUE(db.AddRelation("E", PathGraph(4)).ok());
  const std::uint64_t v1 = db.relation_version("E");
  EXPECT_NE(v1, 0u);

  // Replacing a relation (same name, even same contents) gets a version
  // never handed out before — a cache key from before the mutation can
  // never match again.
  ASSERT_TRUE(db.AddRelation("E", PathGraph(4)).ok());
  const std::uint64_t v2 = db.relation_version("E");
  EXPECT_NE(v2, v1);
  EXPECT_NE(v2, 0u);

  // Versions are process-wide: a different database's relations never
  // collide with this one's.
  Database other(4);
  ASSERT_TRUE(other.AddRelation("E", PathGraph(4)).ok());
  EXPECT_NE(other.relation_version("E"), v1);
  EXPECT_NE(other.relation_version("E"), v2);
}

TEST(RelationVersionTest, CopiesShareVersionsReparseDoesNot) {
  Database db = PathDbWithLastP(4);
  Database copy = db;  // same object history -> same versions
  EXPECT_EQ(copy.relation_version("E"), db.relation_version("E"));
  EXPECT_EQ(copy.relation_version("P"), db.relation_version("P"));

  auto reparsed = ParseDatabase(db.ToString());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_NE(reparsed->relation_version("E"), db.relation_version("E"));
}

// --- FormulaInterner across formulas ----------------------------------------

TEST(FormulaInternerTest, SharedInternerAlignsClassIdsAcrossFormulas) {
  FormulaInterner interner;
  auto a = MustParse("E(x1,x2) & P(x1)");
  auto b = MustParse("P(x1) | E(x1,x2)");
  FormulaIndex ia(a, &interner);
  FormulaIndex ib(b, &interner);

  const auto& conj = static_cast<const BinaryFormula&>(*a);
  const auto& disj = static_cast<const BinaryFormula&>(*b);
  // Identical subtrees of *different* formulas share a class id — that is
  // what makes one formula's exported answer another formula's cache hit.
  EXPECT_EQ(ia.Facts(conj.lhs().get()).cls, ib.Facts(disj.rhs().get()).cls);
  EXPECT_EQ(ia.Facts(conj.rhs().get()).cls, ib.Facts(disj.lhs().get()).cls);
  // The two roots are distinct formulas and get distinct classes.
  EXPECT_NE(ia.Facts(a.get()).cls, ib.Facts(b.get()).cls);
}

TEST(FormulaInternerTest, SeparateInternersAreIndependent) {
  auto f = MustParse("E(x1,x2)");
  FormulaIndex ia(f);  // owns a private interner
  FormulaIndex ib(f);
  // Both assign ids from scratch: same structure, same local numbering.
  EXPECT_EQ(ia.Facts(f.get()).cls, ib.Facts(f.get()).cls);
}

// --- ResourceGovernor::TryCharge --------------------------------------------

TEST(TryChargeTest, RefusalLeavesAccountExactAndNeverTrips) {
  ResourceGovernor::Limits limits;
  limits.mem_budget_bytes = 1024;
  ResourceGovernor gov(limits);

  EXPECT_TRUE(gov.TryCharge(512));
  EXPECT_EQ(gov.stats().mem_current_bytes, 512u);

  // Over budget: refused, nothing sticks, and — unlike Charge — the
  // governor is NOT tripped; later work proceeds.
  EXPECT_FALSE(gov.TryCharge(1024));
  EXPECT_EQ(gov.stats().mem_current_bytes, 512u);
  EXPECT_FALSE(gov.stopped());
  EXPECT_TRUE(gov.Check().ok());
  EXPECT_TRUE(gov.Charge(256).ok());
  gov.Release(768);
  EXPECT_EQ(gov.stats().mem_current_bytes, 0u);
}

TEST(TryChargeTest, ParentRefusalRollsBackChild) {
  ResourceGovernor::Limits parent_limits;
  parent_limits.mem_budget_bytes = 256;
  ResourceGovernor parent(parent_limits);
  ResourceGovernor child;  // unlimited on its own
  child.set_parent(&parent);

  // The child accepts 512 but the parent refuses: the charge must land in
  // NEITHER account (contrast Charge, which sticks in both and trips).
  EXPECT_FALSE(child.TryCharge(512));
  EXPECT_EQ(child.stats().mem_current_bytes, 0u);
  EXPECT_EQ(parent.stats().mem_current_bytes, 0u);
  EXPECT_FALSE(parent.stopped());

  // Within budget it lands in both, and Release drains both.
  EXPECT_TRUE(child.TryCharge(128));
  EXPECT_EQ(child.stats().mem_current_bytes, 128u);
  EXPECT_EQ(parent.stats().mem_current_bytes, 128u);
  child.Release(128);
  EXPECT_EQ(child.stats().mem_current_bytes, 0u);
  EXPECT_EQ(parent.stats().mem_current_bytes, 0u);
}

TEST(TryChargeTest, StoppedGovernorRefusesImmediately) {
  ResourceGovernor gov;
  gov.Cancel("test");
  EXPECT_FALSE(gov.TryCharge(1));
  EXPECT_EQ(gov.stats().mem_current_bytes, 0u);
}

// --- AnswerCache ------------------------------------------------------------

AnswerCache::Key TestKey(std::size_t cls, std::uint64_t version) {
  AnswerCache::Key key;
  key.cls = cls;
  key.domain_size = 8;
  key.num_vars = 3;
  key.versions = {version};
  return key;
}

TEST(AnswerCacheTest, LookupMissThenHitAfterInsert) {
  AnswerCache cache;
  AssignmentSet out;
  EXPECT_FALSE(cache.Lookup(TestKey(0, 1), &out));

  AssignmentSet value = AssignmentSet::Full(8, 3);
  cache.Insert(TestKey(0, 1), value);
  ASSERT_TRUE(cache.Lookup(TestKey(0, 1), &out));
  EXPECT_TRUE(out == value);

  // Same class, different relation version: a distinct key — no hit.
  EXPECT_FALSE(cache.Lookup(TestKey(0, 2), &out));

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(AnswerCacheTest, LruEvictsColdestUnderByteCap) {
  AssignmentSet value = AssignmentSet::Full(8, 3);
  // Find one entry's cost, then cap the cache at two entries.
  std::size_t per_entry = 0;
  {
    AnswerCache probe;
    probe.Insert(TestKey(0, 1), value);
    per_entry = probe.stats().bytes;
  }
  AnswerCacheOptions options;
  options.max_bytes = 2 * per_entry;
  AnswerCache cache(options);

  cache.Insert(TestKey(0, 1), value);
  cache.Insert(TestKey(1, 1), value);
  AssignmentSet out;
  // Touch key 0 so key 1 is the LRU victim.
  ASSERT_TRUE(cache.Lookup(TestKey(0, 1), &out));
  cache.Insert(TestKey(2, 1), value);

  EXPECT_TRUE(cache.Lookup(TestKey(0, 1), &out));
  EXPECT_FALSE(cache.Lookup(TestKey(1, 1), &out));  // evicted
  EXPECT_TRUE(cache.Lookup(TestKey(2, 1), &out));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_LE(cache.stats().bytes, options.max_bytes);
}

TEST(AnswerCacheTest, GovernorAccountBalancesThroughEvictClearDestroy) {
  // Analogue of ChildBudgetTripKeepsParentAccountBalanced for the cache:
  // every resident byte is charged to the session account and every
  // eviction path — LRU, Clear, destruction — releases exactly what it
  // charged, so the account returns to zero.
  ResourceGovernor session;
  AssignmentSet value = AssignmentSet::Full(8, 3);
  std::size_t per_entry = 0;
  {
    AnswerCache probe;
    probe.Insert(TestKey(0, 1), value);
    per_entry = probe.stats().bytes;
  }
  {
    AnswerCacheOptions options;
    options.max_bytes = 2 * per_entry;
    options.governor = &session;
    AnswerCache cache(options);
    for (std::size_t i = 0; i < 5; ++i) {
      cache.Insert(TestKey(i, 1), value);
      EXPECT_EQ(session.stats().mem_current_bytes, cache.stats().bytes);
    }
    EXPECT_EQ(cache.stats().evictions, 3u);

    cache.Clear();
    EXPECT_EQ(session.stats().mem_current_bytes, 0u);
    EXPECT_EQ(cache.stats().entries, 0u);
    // Monotone counters survive Clear.
    EXPECT_EQ(cache.stats().insertions, 5u);

    cache.Insert(TestKey(7, 1), value);
    EXPECT_EQ(session.stats().mem_current_bytes, cache.stats().bytes);
  }  // destructor releases the last resident entry
  EXPECT_EQ(session.stats().mem_current_bytes, 0u);
}

TEST(AnswerCacheTest, GovernorRefusalShedsLruInsteadOfTripping) {
  AssignmentSet value = AssignmentSet::Full(8, 3);
  std::size_t per_entry = 0;
  {
    AnswerCache probe;
    probe.Insert(TestKey(0, 1), value);
    per_entry = probe.stats().bytes;
  }
  ResourceGovernor::Limits limits;
  limits.mem_budget_bytes = per_entry + per_entry / 2;  // one entry fits
  ResourceGovernor session(limits);
  AnswerCacheOptions options;
  options.governor = &session;
  AnswerCache cache(options);

  cache.Insert(TestKey(0, 1), value);
  cache.Insert(TestKey(1, 1), value);  // evicts key 0 to make room
  AssignmentSet out;
  EXPECT_FALSE(cache.Lookup(TestKey(0, 1), &out));
  EXPECT_TRUE(cache.Lookup(TestKey(1, 1), &out));
  EXPECT_EQ(cache.stats().evictions, 1u);
  // The cache never trips the session token.
  EXPECT_FALSE(session.stopped());
  EXPECT_TRUE(session.Check().ok());
}

// --- Evaluator integration --------------------------------------------------

TEST(CrossQueryCacheTest, WarmHitIsByteIdenticalToCacheOff) {
  Database db = PathDbWithLastP(8);
  auto f = MustParse(kReach);

  BoundedEvalOptions off;
  off.cross_query_cache = false;
  const AssignmentSet reference = MustEval(db, 3, f, off);

  AnswerCache cache;
  BoundedEvalOptions on;
  on.answer_cache = &cache;

  EvalStats cold_stats;
  const AssignmentSet cold = MustEval(db, 3, f, on, &cold_stats);
  EXPECT_TRUE(cold == reference);
  EXPECT_EQ(cold_stats.cache_hits, 0u);
  EXPECT_GT(cold_stats.cache_misses, 0u);

  EvalStats warm_stats;
  const AssignmentSet warm = MustEval(db, 3, f, on, &warm_stats);
  EXPECT_TRUE(warm == reference);
  EXPECT_GT(warm_stats.cache_hits, 0u);
  EXPECT_GT(warm_stats.cache_bytes, 0u);
}

TEST(CrossQueryCacheTest, SharedSubformulaHitsAcrossDifferentQueries) {
  Database db = PathDbWithLastP(8);
  AnswerCache cache;
  BoundedEvalOptions on;
  on.answer_cache = &cache;

  // Two different queries sharing the reachability fixpoint verbatim.
  auto a = MustParse(std::string(kReach));
  auto b = MustParse("P(x1) & " + std::string(kReach));
  MustEval(db, 3, a, on);
  EvalStats stats;
  const AssignmentSet got = MustEval(db, 3, b, on, &stats);
  EXPECT_GT(stats.cache_hits, 0u);

  BoundedEvalOptions off;
  off.cross_query_cache = false;
  EXPECT_TRUE(got == MustEval(db, 3, b, off));
}

TEST(CrossQueryCacheTest, MutationInvalidatesByVersion) {
  Database db = PathDbWithLastP(8);
  auto f = MustParse(kReach);
  AnswerCache cache;
  BoundedEvalOptions on;
  on.answer_cache = &cache;

  const AssignmentSet before = MustEval(db, 3, f, on);

  // Mutate E mid-session: drop all edges. Stale E-dependent entries stay
  // resident but their keys can never match the new version — those probes
  // miss and the fixpoint is recomputed. Invalidation is per-key, not a
  // flush: the P(x1) subtree's key still matches (P was not touched), so
  // it survives the mutation warm.
  ASSERT_TRUE(db.AddRelation("E", RelationBuilder(2).Build()).ok());
  EvalStats stats;
  const AssignmentSet after = MustEval(db, 3, f, on, &stats);
  EXPECT_GT(stats.cache_misses, 0u);
  EXPECT_GT(stats.cache_hits, 0u);  // the untouched-P subtree

  BoundedEvalOptions off;
  off.cross_query_cache = false;
  EXPECT_TRUE(after == MustEval(db, 3, f, off));
  EXPECT_FALSE(after == before);  // P-reachability collapsed to P itself

  // And the fresh result is itself cached: an immediate re-run hits.
  EvalStats warm;
  EXPECT_TRUE(MustEval(db, 3, f, on, &warm) == after);
  EXPECT_GT(warm.cache_hits, 0u);
}

TEST(CrossQueryCacheTest, KillSwitchSkipsCacheEntirely) {
  Database db = PathDbWithLastP(8);
  auto f = MustParse(kReach);
  AnswerCache cache;

  BoundedEvalOptions off;
  off.answer_cache = &cache;
  off.cross_query_cache = false;
  EvalStats stats;
  MustEval(db, 3, f, off, &stats);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 0u);
  EXPECT_EQ(cache.stats().entries, 0u);  // nothing probed, nothing exported
}

TEST(CrossQueryCacheTest, CacheNeedsMemoLayer) {
  Database db = PathDbWithLastP(8);
  auto f = MustParse(kReach);
  AnswerCache cache;

  // The cache piggybacks on the memo layer; with memo off it is inert.
  BoundedEvalOptions no_memo;
  no_memo.answer_cache = &cache;
  no_memo.memo = false;
  EvalStats stats;
  const AssignmentSet got = MustEval(db, 3, f, no_memo, &stats);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 0u);
  EXPECT_EQ(cache.stats().entries, 0u);

  BoundedEvalOptions off;
  off.cross_query_cache = false;
  EXPECT_TRUE(got == MustEval(db, 3, f, off));
}

TEST(CrossQueryCacheTest, EnvironmentDependentSubtreesStayPerQuery) {
  Database db = PathDbWithLastP(8);
  AnswerCache cache;
  BoundedEvalOptions on;
  on.answer_cache = &cache;

  // T is fixpoint-bound inside the body: the body's memo entries carry
  // nonzero version signatures and must never be exported. Only the
  // db-resolved subtrees (and the closed root) are cacheable.
  auto f = MustParse(kReach);
  MustEval(db, 3, f, on);
  const auto exported = cache.stats().entries;
  EXPECT_GT(exported, 0u);

  // Re-running yields hits only for those db-resolved entries, and the
  // answer stays byte-identical.
  EvalStats stats;
  const AssignmentSet warm = MustEval(db, 3, f, on, &stats);
  EXPECT_GT(stats.cache_hits, 0u);
  BoundedEvalOptions off;
  off.cross_query_cache = false;
  EXPECT_TRUE(warm == MustEval(db, 3, f, off));
}

// --- Relation fingerprints (DESIGN.md §13) ----------------------------------

TEST(RelationFingerprintTest, OrderIndependentAndIncrementallyMaintained) {
  const Value rows[3][2] = {{0, 1}, {1, 2}, {2, 3}};

  RelationBuilder fwd(2), rev(2);
  for (int i = 0; i < 3; ++i) fwd.Add(rows[i]);
  for (int i = 2; i >= 0; --i) rev.Add(rows[i]);
  const Relation a = fwd.Build();
  const Relation b = rev.Build();
  EXPECT_EQ(a.fingerprint(), b.fingerprint());

  // Insert-built and bulk-built relations with the same tuple set agree —
  // the fingerprint is maintained incrementally, not recomputed.
  Relation c(2);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(c.Insert({rows[i][0], rows[i][1]}));
  }
  EXPECT_EQ(c.fingerprint(), a.fingerprint());
  // A duplicate insert is a no-op for content, so also for the fingerprint.
  EXPECT_FALSE(c.Insert({rows[0][0], rows[0][1]}));
  EXPECT_EQ(c.fingerprint(), a.fingerprint());
}

TEST(RelationFingerprintTest, SensitiveToContentArityAndSize) {
  RelationBuilder base(2);
  const Value t0[] = {0, 1};
  base.Add(t0);
  const Relation r0 = base.Build();

  RelationBuilder other(2);
  const Value t1[] = {1, 0};
  other.Add(t1);
  EXPECT_NE(r0.fingerprint(), other.Build().fingerprint());

  // Same flat bytes, different arity.
  RelationBuilder unary(1);
  const Value u0[] = {0};
  const Value u1[] = {1};
  unary.Add(u0);
  unary.Add(u1);
  EXPECT_NE(r0.fingerprint(), unary.Build().fingerprint());

  // Empty relations of different arity are still distinguishable, and
  // a proposition differs from an empty nullary relation.
  EXPECT_NE(RelationBuilder(1).Build().fingerprint(),
            RelationBuilder(2).Build().fingerprint());
  EXPECT_NE(Relation::Proposition(true).fingerprint(),
            Relation::Proposition(false).fingerprint());
}

TEST(RelationFingerprintTest, StableAcrossReparseWhileVersionsAreNot) {
  Database db = PathDbWithLastP(6);
  auto reparsed = ParseDatabase(db.ToString());
  ASSERT_TRUE(reparsed.ok());
  // Same contents: same fingerprints — this is the identity persistence
  // keys on. The version nonces, by design, do not survive.
  EXPECT_EQ(reparsed->relation_fingerprint("E"), db.relation_fingerprint("E"));
  EXPECT_EQ(reparsed->relation_fingerprint("P"), db.relation_fingerprint("P"));
  EXPECT_NE(reparsed->relation_version("E"), db.relation_version("E"));
  // Missing relation: 0, never a fingerprint.
  EXPECT_EQ(db.relation_fingerprint("nope"), 0u);
  EXPECT_NE(db.relation_fingerprint("E"), 0u);
}

// --- Canonical class forms ---------------------------------------------------

TEST(CanonicalFormTest, RoundTripsAcrossIndependentInterners) {
  auto f = MustParse(kReach);
  FormulaInterner a;
  FormulaIndex ia(f, &a);
  const std::size_t cls_a = ia.Facts(f.get()).cls;
  const std::string canon = a.CanonicalFormOf(cls_a);
  ASSERT_FALSE(canon.empty());

  // A second interner with different id numbering (skewed by interning an
  // unrelated formula first) decodes the canon onto the *same* class a
  // local index build of the same formula lands on.
  FormulaInterner b;
  auto skew = MustParse("exists x1 . Q(x1,x1)");
  FormulaIndex ib_skew(skew, &b);
  std::size_t decoded = 0;
  ASSERT_TRUE(b.InternCanonical(canon, &decoded));
  FormulaIndex ib(f, &b);
  EXPECT_EQ(ib.Facts(f.get()).cls, decoded);
  // And the canon re-encodes identically from the new interner.
  EXPECT_EQ(b.CanonicalFormOf(decoded), canon);

  // Free predicate names (T is fixpoint-bound, E and P are free).
  std::vector<std::string> free_names = b.FreePredNames(decoded);
  std::sort(free_names.begin(), free_names.end());
  EXPECT_EQ(free_names, (std::vector<std::string>{"E", "P"}));
}

TEST(CanonicalFormTest, RejectsMalformedBytes) {
  auto f = MustParse(kReach);
  FormulaInterner a;
  FormulaIndex ia(f, &a);
  const std::string canon = a.CanonicalFormOf(ia.Facts(f.get()).cls);

  FormulaInterner b;
  std::size_t cls = 0;
  EXPECT_FALSE(b.InternCanonical("", &cls));
  // Every strict prefix is rejected, never crashes, never half-interns.
  for (std::size_t len = 0; len < canon.size(); ++len) {
    EXPECT_FALSE(b.InternCanonical(canon.substr(0, len), &cls))
        << "prefix length " << len;
  }
  // Trailing garbage is rejected too.
  EXPECT_FALSE(b.InternCanonical(canon + "\xff", &cls));
  // An invalid kind tag up front.
  EXPECT_FALSE(b.InternCanonical(std::string(8, '\xff'), &cls));
  // The interner is still usable afterwards.
  ASSERT_TRUE(b.InternCanonical(canon, &cls));
  EXPECT_EQ(b.CanonicalFormOf(cls), canon);
}

// --- Portable export / restore / resolve ------------------------------------

TEST(PortableCacheTest, ExportRestoreResolveServesHitsOnReparsedDatabase) {
  Database db = PathDbWithLastP(8);
  auto f = MustParse(kReach);

  BoundedEvalOptions off;
  off.cross_query_cache = false;
  const AssignmentSet reference = MustEval(db, 3, f, off);

  AnswerCache warm;
  BoundedEvalOptions on;
  on.answer_cache = &warm;
  MustEval(db, 3, f, on);
  std::vector<AnswerCache::PortableEntry> exported = warm.ExportResolved(db);
  ASSERT_FALSE(exported.empty());

  // A fresh process: new cache, new interner, a reparse of the same data
  // (so every version nonce differs but every fingerprint matches).
  auto reparsed = ParseDatabase(db.ToString());
  ASSERT_TRUE(reparsed.ok());
  AnswerCache cold;
  const std::size_t kept = cold.Restore(std::move(exported));
  EXPECT_GT(kept, 0u);
  EXPECT_EQ(cold.stats().pending, kept);
  const std::size_t live = cold.ResolveAgainst(*reparsed);
  EXPECT_EQ(live, kept);
  EXPECT_EQ(cold.stats().pending, 0u);
  EXPECT_EQ(cold.stats().restored, live);

  // First evaluation after the "restart": hits, and bytes identical to the
  // cache-off reference.
  auto f2 = MustParse(kReach);
  BoundedEvalOptions prewarmed;
  prewarmed.answer_cache = &cold;
  EvalStats stats;
  const AssignmentSet got = MustEval(*reparsed, 3, f2, prewarmed, &stats);
  EXPECT_GT(stats.cache_hits, 0u);
  EXPECT_TRUE(got == reference);
}

TEST(PortableCacheTest, StaleSnapshotStaysPendingAndNeverAnswers) {
  Database db = PathDbWithLastP(8);
  auto f = MustParse(kReach);
  AnswerCache warm;
  BoundedEvalOptions on;
  on.answer_cache = &warm;
  MustEval(db, 3, f, on);
  std::vector<AnswerCache::PortableEntry> exported = warm.ExportResolved(db);
  ASSERT_FALSE(exported.empty());

  // Same schema and domain, different contents for both relations: every
  // fingerprint mismatches, so nothing resolves and nothing is served from
  // the snapshot. Entries wait pending (the right data may still be
  // loaded). (If a relation *were* unchanged — same fingerprint — its
  // entries would resolve, and correctly so: the fingerprint is the
  // content identity.)
  Database changed(8);
  ASSERT_TRUE(changed.AddRelation("E", CycleGraph(8)).ok());
  RelationBuilder p(1);
  const Value first = 0;
  p.Add(&first);
  ASSERT_TRUE(changed.AddRelation("P", p.Build()).ok());

  AnswerCache cold;
  const std::size_t kept = cold.Restore(std::move(exported));
  ASSERT_GT(kept, 0u);
  EXPECT_EQ(cold.ResolveAgainst(changed), 0u);
  EXPECT_EQ(cold.stats().pending, kept);
  EXPECT_EQ(cold.stats().entries, 0u);

  auto f2 = MustParse(kReach);
  BoundedEvalOptions prewarmed;
  prewarmed.answer_cache = &cold;
  EvalStats stats;
  const AssignmentSet got = MustEval(changed, 3, f2, prewarmed, &stats);
  EXPECT_EQ(stats.cache_hits, 0u);  // never a wrong answer from stale data
  BoundedEvalOptions off;
  off.cross_query_cache = false;
  EXPECT_TRUE(got == MustEval(changed, 3, f2, off));
}

TEST(PortableCacheTest, RestoreUnderPressureShedsViaTryCharge) {
  Database db = PathDbWithLastP(8);
  auto f = MustParse(kReach);
  AnswerCache warm;
  BoundedEvalOptions on;
  on.answer_cache = &warm;
  MustEval(db, 3, f, on);
  std::vector<AnswerCache::PortableEntry> exported = warm.ExportResolved(db);
  ASSERT_FALSE(exported.empty());

  // A governor with no memory headroom at all: every TryCharge is refused,
  // every restored entry is shed — and the session token is *not* tripped.
  ResourceGovernor::Limits limits;
  limits.mem_budget_bytes = 1;
  ResourceGovernor session(limits);
  AnswerCacheOptions options;
  options.governor = &session;
  AnswerCache cold(options);
  EXPECT_EQ(cold.Restore(std::move(exported)), 0u);
  EXPECT_EQ(cold.stats().pending, 0u);
  EXPECT_FALSE(session.stopped());
  EXPECT_TRUE(session.Check().ok());
  EXPECT_EQ(session.stats().mem_current_bytes, 0u);
}

// --- Snapshot codec ----------------------------------------------------------

std::vector<AnswerCache::PortableEntry> ExportedReachEntries(std::size_t n) {
  Database db = PathDbWithLastP(n);
  auto f = MustParse(kReach);
  AnswerCache cache;
  BoundedEvalOptions on;
  on.answer_cache = &cache;
  MustEval(db, 3, f, on);
  return cache.ExportResolved(db);
}

TEST(CacheSnapshotTest, EncodeDecodeRoundTrip) {
  const auto entries = ExportedReachEntries(8);
  ASSERT_FALSE(entries.empty());
  const std::string encoded = EncodeCacheSnapshot(entries);
  auto decoded = DecodeCacheSnapshot(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ((*decoded)[i].key.canon, entries[i].key.canon);
    EXPECT_EQ((*decoded)[i].key.domain_size, entries[i].key.domain_size);
    EXPECT_EQ((*decoded)[i].key.num_vars, entries[i].key.num_vars);
    EXPECT_EQ((*decoded)[i].key.rels, entries[i].key.rels);
    EXPECT_TRUE((*decoded)[i].value == entries[i].value);
  }

  // The empty snapshot is valid too (a session that cached nothing).
  auto empty = DecodeCacheSnapshot(EncodeCacheSnapshot({}));
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(CacheSnapshotTest, EveryTruncationIsRejectedNotCrashed) {
  const std::string encoded = EncodeCacheSnapshot(ExportedReachEntries(6));
  for (std::size_t len = 0; len < encoded.size(); ++len) {
    auto r = DecodeCacheSnapshot(encoded.substr(0, len));
    EXPECT_FALSE(r.ok()) << "prefix length " << len;
  }
}

TEST(CacheSnapshotTest, EveryFlippedByteIsRejected) {
  const std::string encoded = EncodeCacheSnapshot(ExportedReachEntries(6));
  // Flipping any single byte breaks the magic, the version, the count, the
  // checksum, or the payload the checksum covers — all rejections. (No
  // stride: corrupt snapshots must *never* decode to plausible entries.)
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    std::string bad = encoded;
    bad[i] = static_cast<char>(bad[i] ^ 0x40);
    auto r = DecodeCacheSnapshot(bad);
    EXPECT_FALSE(r.ok()) << "flipped byte " << i;
  }
  // Trailing garbage changes the payload under the recorded checksum.
  EXPECT_FALSE(DecodeCacheSnapshot(encoded + "x").ok());
}

TEST(CacheSnapshotTest, SaveLoadFileRoundTripAndMissingFile) {
  const auto entries = ExportedReachEntries(8);
  const std::string path =
      ::testing::TempDir() + "/bvq_cache_snapshot_test.bvqcache";
  ASSERT_TRUE(SaveCacheSnapshotFile(path, entries).ok());
  auto loaded = LoadCacheSnapshotFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), entries.size());
  std::remove(path.c_str());

  auto missing = LoadCacheSnapshotFile(path);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace bvq
