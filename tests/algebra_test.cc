#include <gtest/gtest.h>

#include "algebra/boolean_value.h"
#include "algebra/parenthesis_grammar.h"
#include "algebra/word_algebra.h"
#include "common/rng.h"
#include "db/generators.h"
#include "eval/bounded_eval.h"
#include "logic/analysis.h"
#include "logic/parser.h"
#include "logic/random_formula.h"

namespace bvq {
namespace {

Database SmallGraphDb() {
  Database db(2);
  Status s = db.AddRelation("E", Relation::FromTuples(2, {{0, 1}, {1, 1}}));
  EXPECT_TRUE(s.ok());
  s = db.AddRelation("P", Relation::FromTuples(1, {{1}}));
  EXPECT_TRUE(s.ok());
  return db;
}

TEST(WordAlgebraTest, RejectsLargeCubes) {
  Database db(10);
  EXPECT_FALSE(WordAlgebraEvaluator::Create(db, 3).ok());  // 1000 > 64
  EXPECT_TRUE(WordAlgebraEvaluator::Create(db, 1).ok());
}

TEST(WordAlgebraTest, BasicEvaluation) {
  Database db = SmallGraphDb();
  auto algebra = WordAlgebraEvaluator::Create(db, 2);
  ASSERT_TRUE(algebra.ok());
  auto mask = algebra->Evaluate(*ParseFormula("E(x1,x2) & P(x2)"));
  ASSERT_TRUE(mask.ok());
  Relation rel = algebra->MaskToRelation(*mask, {0, 1});
  EXPECT_EQ(rel, Relation::FromTuples(2, {{0, 1}, {1, 1}}));
}

TEST(WordAlgebraTest, MatchesBoundedEvaluatorOnRandomFormulas) {
  Rng rng(606);
  RandomFormulaOptions opts;
  opts.num_vars = 2;
  opts.max_size = 20;
  opts.predicates = {{"E", 2}, {"P", 1}};
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = 2 + rng.Below(2);  // n^2 <= 9 <= 64
    Database db(n);
    ASSERT_TRUE(db.AddRelation("E", RandomRelation(n, 2, 0.4, rng)).ok());
    ASSERT_TRUE(db.AddRelation("P", RandomRelation(n, 1, 0.5, rng)).ok());
    FormulaPtr f = RandomFormula(opts, rng);

    auto algebra = WordAlgebraEvaluator::Create(db, 2);
    ASSERT_TRUE(algebra.ok());
    auto mask = algebra->Evaluate(f);
    ASSERT_TRUE(mask.ok()) << FormulaToString(f);

    BoundedEvaluator eval(db, 2);
    auto set = eval.Evaluate(f);
    ASSERT_TRUE(set.ok());
    EXPECT_EQ(algebra->MaskToRelation(*mask, {0, 1}),
              set->ToRelation({0, 1}))
        << FormulaToString(f);
  }
}

TEST(WordAlgebraTest, RejectsFixpoints) {
  Database db = SmallGraphDb();
  auto algebra = WordAlgebraEvaluator::Create(db, 2);
  ASSERT_TRUE(algebra.ok());
  EXPECT_FALSE(
      algebra->Evaluate(*ParseFormula("[lfp T(x1) . T(x1)](x1)")).ok());
}

// --- parenthesis grammar (Lemma 4.2) -----------------------------------------

TEST(ParenthesisGrammarTest, BuildsForTinyDatabase) {
  Database db(2);
  ASSERT_TRUE(db.AddRelation("P", Relation::FromTuples(1, {{1}})).ok());
  auto g = ParenthesisGrammar::Build(db, 1, {{"P", {0}}});
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->NumNonterminals(), 5u);  // 2^(2^1) + start
  EXPECT_GT(g->NumProductions(), 16u);
  EXPECT_NE(g->ToString().find("S -> ("), std::string::npos);
}

TEST(ParenthesisGrammarTest, GateOnLargeDatabases) {
  Database db(3);
  EXPECT_FALSE(ParenthesisGrammar::Build(db, 2, {}).ok());  // 3^2 = 9 > 6
}

TEST(ParenthesisGrammarTest, RecognizeAgreesWithEvaluation) {
  Database db(2);
  ASSERT_TRUE(db.AddRelation("P", Relation::FromTuples(1, {{1}})).ok());
  ASSERT_TRUE(
      db.AddRelation("E", Relation::FromTuples(2, {{0, 1}})).ok());
  auto g = ParenthesisGrammar::Build(db, 2,
                                     {{"P", {0}}, {"P", {1}}, {"E", {0, 1}}});
  ASSERT_TRUE(g.ok()) << g.status().ToString();

  auto algebra = WordAlgebraEvaluator::Create(db, 2);
  ASSERT_TRUE(algebra.ok());

  const char* formulas[] = {
      "P(x1)",
      "P(x1) & E(x1,x2)",
      "!(P(x2)) | P(x1)",
      "exists x1 . E(x1,x2)",
      "forall x2 . (E(x1,x2) -> P(x2))",
      "x1 = x2 <-> P(x1)",
  };
  for (const char* text : formulas) {
    auto f = ParseFormula(text);
    ASSERT_TRUE(f.ok());
    auto expr = ParenthesisGrammar::FormulaToExpressionString(*f);
    ASSERT_TRUE(expr.ok()) << text;
    auto value = g->EvaluateExpression(*expr);
    ASSERT_TRUE(value.ok()) << text << " => " << *expr << " : "
                            << value.status().ToString();
    auto direct = algebra->Evaluate(*f);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(*value, *direct) << text;
    // Membership "(expr @ r<mask>)" holds exactly for the right mask.
    auto yes = g->Recognize(*expr + " @ r" + std::to_string(*direct));
    ASSERT_TRUE(yes.ok());
    EXPECT_TRUE(*yes) << text;
    auto no = g->Recognize(*expr + " @ r" +
                           std::to_string(*direct ^ uint64_t{1}));
    ASSERT_TRUE(no.ok());
    EXPECT_FALSE(*no) << text;
  }
}

TEST(ParenthesisGrammarTest, RecognizeRejectsMalformedWords) {
  Database db(2);
  ASSERT_TRUE(db.AddRelation("P", Relation::FromTuples(1, {{1}})).ok());
  auto g = ParenthesisGrammar::Build(db, 1, {{"P", {0}}});
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(g->Recognize("( P[1] )").ok());          // no claim
  EXPECT_FALSE(g->Recognize("( P[1] ) @ q3").ok());     // bad nonterminal
  EXPECT_FALSE(g->Recognize("( P[1] ( ) @ r1").ok());   // bad expr
  EXPECT_FALSE(g->Recognize("( Q[1] ) @ r1").ok());     // unknown atom
}

// --- Boolean formula value (Theorem 4.4) --------------------------------------

TEST(BooleanValueTest, DirectEvaluation) {
  EXPECT_TRUE(*EvalBooleanFormula(*ParseFormula("true & !(false)")));
  EXPECT_FALSE(*EvalBooleanFormula(*ParseFormula("true -> false")));
  EXPECT_TRUE(*EvalBooleanFormula(*ParseFormula("false <-> false")));
  EXPECT_FALSE(EvalBooleanFormula(*ParseFormula("P(x1)")).ok());
}

TEST(BooleanValueTest, ReductionToFixedDatabase) {
  Rng rng(8);
  Database b = BooleanValueDatabase();
  BoundedEvaluator eval(b, 1);
  for (int trial = 0; trial < 100; ++trial) {
    FormulaPtr f = RandomBooleanFormula(1 + rng.Below(30), rng);
    auto expected = EvalBooleanFormula(f);
    ASSERT_TRUE(expected.ok());
    auto sentence = BooleanFormulaToFoSentence(f);
    ASSERT_TRUE(sentence.ok());
    EXPECT_LE(NumVariables(*sentence), 1u);
    auto result = eval.Evaluate(*sentence);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->Empty() || result->IsFull());
    EXPECT_EQ(!result->Empty(), *expected) << FormulaToString(f);
  }
}

TEST(BooleanValueTest, ReductionIsLinear) {
  Rng rng(9);
  FormulaPtr f = RandomBooleanFormula(50, rng);
  auto sentence = BooleanFormulaToFoSentence(f);
  ASSERT_TRUE(sentence.ok());
  // Each constant becomes 2 nodes (quantifier + atom): at most 2x + same
  // connective count.
  EXPECT_LE((*sentence)->Size(), 2 * f->Size());
}

}  // namespace
}  // namespace bvq
