// Determinism of the parallel evaluation layer: every kernel and the whole
// evaluator must produce byte-identical results for every thread count (the
// contract in DESIGN.md, "Threading model & determinism"), plus unit tests
// for the thread pool itself and the checked-size helpers the parallel
// kernels rely on.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/index.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "db/assignment_set.h"
#include "db/generators.h"
#include "eval/bounded_eval.h"
#include "logic/formula.h"
#include "logic/parser.h"
#include "logic/random_formula.h"

namespace bvq {
namespace {

// --- thread pool ---------------------------------------------------------------

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    ThreadPool pool(threads);
    const std::size_t total = 10'000;
    std::vector<std::atomic<int>> hits(total);
    pool.ParallelFor(total, 64, [&](std::size_t, std::size_t begin,
                                    std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < total; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << ", " << threads
                                   << " threads";
    }
  }
}

TEST(ThreadPoolTest, ChunkBoundariesAreFixedMultiplesOfGrain) {
  ThreadPool pool(4);
  const std::size_t total = 1000, grain = 128;
  std::vector<std::pair<std::size_t, std::size_t>> spans(
      ThreadPool::NumChunks(total, grain));
  pool.ParallelFor(total, grain, [&](std::size_t chunk, std::size_t begin,
                                     std::size_t end) {
    spans[chunk] = {begin, end};
  });
  for (std::size_t c = 0; c < spans.size(); ++c) {
    EXPECT_EQ(spans[c].first, c * grain);
    EXPECT_EQ(spans[c].second, std::min((c + 1) * grain, total));
  }
}

TEST(ThreadPoolTest, NumChunks) {
  EXPECT_EQ(ThreadPool::NumChunks(0, 64), 0u);
  EXPECT_EQ(ThreadPool::NumChunks(64, 64), 1u);
  EXPECT_EQ(ThreadPool::NumChunks(65, 64), 2u);
  EXPECT_EQ(ThreadPool::NumChunks(1000, 1), 1000u);
}

TEST(ThreadPoolTest, StatsCountDispatches) {
  ThreadPool pool(2);
  pool.ParallelFor(1000, 100,
                   [](std::size_t, std::size_t, std::size_t) {});
  const ThreadPoolStats stats = pool.stats();
  EXPECT_EQ(stats.parallel_loops, 1u);
  EXPECT_EQ(stats.chunks, 10u);
  pool.ResetStats();
  EXPECT_EQ(pool.stats().parallel_loops, 0u);
}

TEST(ThreadPoolTest, GrainHelpers) {
  // BitGrain is word-aligned so chunks own disjoint bitset words.
  for (std::size_t total : {std::size_t{1}, std::size_t{4096},
                            std::size_t{100'000}, std::size_t{1} << 20}) {
    for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      EXPECT_EQ(BitGrain(total, threads) % 64, 0u);
      EXPECT_GT(BitGrain(total, threads), 0u);
      EXPECT_GT(RowGrain(total, threads), 0u);
    }
  }
  EXPECT_GE(RowGrain(10'000, 4, 256), 256u);
}

// --- kernel-level determinism ----------------------------------------------------

AssignmentSet RandomCube(std::size_t n, std::size_t k, double density,
                         Rng& rng) {
  AssignmentSet a(n, k);
  const std::size_t total = a.indexer().NumTuples();
  for (std::size_t r = 0; r < total; ++r) {
    if (rng.Bernoulli(density)) a.Set(r);
  }
  return a;
}

class KernelDeterminism : public ::testing::TestWithParam<std::size_t> {
 protected:
  ThreadPool pool_{GetParam()};
};

// n = 32, k = 3: strides 1, 32, 1024 — exercises both the word-aligned slab
// sweep (stride % 64 == 0) and the unaligned shard path, on a cube big
// enough (32768 bits) to engage the pool. n = 17, k = 3 (4913 bits) keeps
// every stride unaligned and the bit count off any word boundary.
TEST_P(KernelDeterminism, QuantifierSweepsMatchSerial) {
  for (std::size_t n : {std::size_t{32}, std::size_t{17}}) {
    Rng rng(1000 + n);
    AssignmentSet a = RandomCube(n, 3, 0.3, rng);
    for (std::size_t var = 0; var < 3; ++var) {
      EXPECT_EQ(a.ExistsVar(var, &pool_).bits(), a.ExistsVar(var).bits())
          << "exists x" << var + 1 << ", n=" << n;
      EXPECT_EQ(a.ForAllVar(var, &pool_).bits(), a.ForAllVar(var).bits())
          << "forall x" << var + 1 << ", n=" << n;
    }
  }
}

TEST_P(KernelDeterminism, EqualityAndRemapMatchSerial) {
  for (std::size_t n : {std::size_t{32}, std::size_t{17}}) {
    EXPECT_EQ(AssignmentSet::Equality(n, 3, 0, 2, &pool_).bits(),
              AssignmentSet::Equality(n, 3, 0, 2).bits());
    Rng rng(2000 + n);
    AssignmentSet a = RandomCube(n, 3, 0.3, rng);
    const std::vector<std::size_t> targets = {0, 1};
    const std::vector<std::size_t> sources = {2, 2};
    EXPECT_EQ(a.Remap(targets, sources, &pool_).bits(),
              a.Remap(targets, sources).bits());
    auto table =
        AssignmentSet::BuildRemapTable(a.indexer(), targets, sources, &pool_);
    EXPECT_EQ(table,
              AssignmentSet::BuildRemapTable(a.indexer(), targets, sources));
    EXPECT_EQ(a.RemapByTable(table, &pool_).bits(),
              a.RemapByTable(table).bits());
  }
}

TEST_P(KernelDeterminism, FromAtomMatchesSerial) {
  for (std::size_t n : {std::size_t{32}, std::size_t{17}}) {
    Rng rng(3000 + n);
    Relation rel = RandomRelation(n, 2, 0.4, rng);
    // Plain, permuted, and repeated argument lists.
    const std::vector<std::vector<std::size_t>> arg_lists = {
        {0, 1}, {2, 0}, {1, 1}};
    for (const auto& args : arg_lists) {
      EXPECT_EQ(AssignmentSet::FromAtom(n, 3, rel, args, &pool_).bits(),
                AssignmentSet::FromAtom(n, 3, rel, args).bits())
          << "n=" << n;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, KernelDeterminism,
                         ::testing::Values(2, 4, 8));

// --- whole-evaluator determinism -------------------------------------------------

// Random FO^k / FP^k / PFP^k formulas evaluated with num_threads 1, 2, 4,
// and 8 must produce identical answer relations (1 is the legacy serial
// path, so this pins the parallel layer to the seed behaviour).
TEST(ParallelEvalTest, ByteIdenticalAcrossThreadCounts) {
  Rng rng(424242);
  RandomFormulaOptions opts;
  opts.num_vars = 3;
  opts.max_size = 18;
  opts.predicates = {{"E", 2}, {"P", 1}};
  opts.allow_fixpoints = true;
  opts.allow_pfp = true;
  opts.allow_ifp = true;

  const std::vector<std::size_t> all_vars = {0, 1, 2};
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 2 + rng.Below(4);
    Database db(n);
    ASSERT_TRUE(db.AddRelation("E", RandomRelation(n, 2, 0.35, rng)).ok());
    ASSERT_TRUE(db.AddRelation("P", RandomRelation(n, 1, 0.5, rng)).ok());
    FormulaPtr f = RandomFormula(opts, rng);
    const std::string dump = FormulaToString(f) + "\n" + db.ToString();

    BoundedEvalOptions serial;
    serial.num_threads = 1;
    BoundedEvaluator base(db, 3, serial);
    auto expected = base.EvaluateQuery(Query{all_vars, f});
    ASSERT_TRUE(expected.ok()) << dump;

    for (std::size_t threads : {std::size_t{2}, std::size_t{4},
                                std::size_t{8}}) {
      BoundedEvalOptions par;
      par.num_threads = threads;
      BoundedEvaluator eval(db, 3, par);
      auto got = eval.EvaluateQuery(Query{all_vars, f});
      ASSERT_TRUE(got.ok()) << dump;
      EXPECT_EQ(*got, *expected)
          << threads << " threads differ from serial\n"
          << dump;
    }
  }
}

// The Floyd PFP mode has its own parallel block sweeps; pin it separately.
TEST(ParallelEvalTest, FloydPfpIsDeterministicAcrossThreadCounts) {
  Rng rng(515151);
  RandomFormulaOptions opts;
  opts.num_vars = 2;
  opts.max_size = 16;
  opts.predicates = {{"E", 2}, {"P", 1}};
  opts.allow_fixpoints = true;
  opts.allow_pfp = true;

  const std::vector<std::size_t> all_vars = {0, 1};
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t n = 2 + rng.Below(3);
    Database db(n);
    ASSERT_TRUE(db.AddRelation("E", RandomRelation(n, 2, 0.4, rng)).ok());
    ASSERT_TRUE(db.AddRelation("P", RandomRelation(n, 1, 0.5, rng)).ok());
    FormulaPtr f = RandomFormula(opts, rng);
    const std::string dump = FormulaToString(f) + "\n" + db.ToString();

    BoundedEvalOptions serial;
    serial.num_threads = 1;
    serial.pfp_cycle_detection = PfpCycleDetection::kFloyd;
    BoundedEvaluator base(db, 2, serial);
    auto expected = base.EvaluateQuery(Query{all_vars, f});
    ASSERT_TRUE(expected.ok()) << dump;

    BoundedEvalOptions par = serial;
    par.num_threads = 4;
    BoundedEvaluator eval(db, 2, par);
    auto got = eval.EvaluateQuery(Query{all_vars, f});
    ASSERT_TRUE(got.ok()) << dump;
    EXPECT_EQ(*got, *expected) << dump;
  }
}

// --- checked sizing helpers -------------------------------------------------------

TEST(CheckedSizeTest, CheckedMulDetectsOverflow) {
  std::size_t out = 7;
  EXPECT_TRUE(CheckedMul(0, std::numeric_limits<std::size_t>::max(), &out));
  EXPECT_EQ(out, 0u);
  EXPECT_TRUE(CheckedMul(1u << 16, 1u << 16, &out));
  out = 7;
  EXPECT_FALSE(CheckedMul(std::numeric_limits<std::size_t>::max(), 2, &out));
  EXPECT_EQ(out, 7u);  // untouched on failure
}

TEST(CheckedSizeTest, CheckedPowDetectsOverflow) {
  EXPECT_EQ(CheckedPow(10, 3).value(), 1000u);
  EXPECT_EQ(CheckedPow(0, 0).value(), 1u);
  EXPECT_EQ(CheckedPow(0, 5).value(), 0u);
  EXPECT_EQ(CheckedPow(1, 1000).value(), 1u);
  EXPECT_FALSE(CheckedPow(2, 64).ok());
  EXPECT_FALSE(CheckedPow(1u << 16, 5).ok());
}

// --- Rng::Range extremes ----------------------------------------------------------

TEST(RngRangeTest, ExtremesStayInBounds) {
  Rng rng(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Range(5, 5), 5);
    const int64_t r = rng.Range(-3, 3);
    EXPECT_GE(r, -3);
    EXPECT_LE(r, 3);
    // The full int64 span used to overflow (hi - lo in int64_t is UB);
    // every draw is valid by definition, so just exercise it.
    (void)rng.Range(std::numeric_limits<int64_t>::min(),
                    std::numeric_limits<int64_t>::max());
    const int64_t h = rng.Range(std::numeric_limits<int64_t>::max() - 1,
                                std::numeric_limits<int64_t>::max());
    EXPECT_GE(h, std::numeric_limits<int64_t>::max() - 1);
  }
}

}  // namespace
}  // namespace bvq
