#include <gtest/gtest.h>

#include "common/rng.h"
#include "db/assignment_set.h"
#include "db/generators.h"

namespace bvq {
namespace {

TEST(AssignmentSetTest, EmptyAndFull) {
  AssignmentSet e(3, 2);
  EXPECT_TRUE(e.Empty());
  EXPECT_EQ(e.Count(), 0u);
  AssignmentSet f = AssignmentSet::Full(3, 2);
  EXPECT_TRUE(f.IsFull());
  EXPECT_EQ(f.Count(), 9u);
}

TEST(AssignmentSetTest, BooleanOps) {
  AssignmentSet a(2, 2), b(2, 2);
  a.SetAssignment({0, 0});
  a.SetAssignment({1, 1});
  b.SetAssignment({1, 1});
  b.SetAssignment({0, 1});
  AssignmentSet i = a;
  i.AndWith(b);
  EXPECT_EQ(i.Count(), 1u);
  EXPECT_TRUE(i.TestAssignment({1, 1}));
  AssignmentSet u = a;
  u.OrWith(b);
  EXPECT_EQ(u.Count(), 3u);
  AssignmentSet c = a;
  c.Complement();
  EXPECT_EQ(c.Count(), 2u);
  EXPECT_TRUE(c.TestAssignment({1, 0}));
}

TEST(AssignmentSetTest, ExistsVarCylindrifies) {
  // phi(x1,x2) = {(0,1)}; exists x1 . phi == {(*,1)}.
  AssignmentSet a(3, 2);
  a.SetAssignment({0, 1});
  AssignmentSet ex = a.ExistsVar(0);
  EXPECT_EQ(ex.Count(), 3u);
  EXPECT_TRUE(ex.TestAssignment({2, 1}));
  EXPECT_FALSE(ex.TestAssignment({0, 0}));
}

TEST(AssignmentSetTest, ForAllVar) {
  // phi = {(v,1) : all v}; forall x1 . phi == {(*,1)}.
  AssignmentSet a(3, 2);
  for (Value v = 0; v < 3; ++v) a.SetAssignment({v, 1});
  a.SetAssignment({0, 2});
  AssignmentSet fa = a.ForAllVar(0);
  EXPECT_EQ(fa.Count(), 3u);
  EXPECT_TRUE(fa.TestAssignment({1, 1}));
  EXPECT_FALSE(fa.TestAssignment({0, 2}));
}

TEST(AssignmentSetTest, ExistsForAllDuality) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    AssignmentSet a(3, 3);
    for (std::size_t r = 0; r < 27; ++r) {
      if (rng.Bernoulli(0.4)) a.Set(r);
    }
    for (std::size_t var = 0; var < 3; ++var) {
      // forall x . a == !(exists x . !a)
      AssignmentSet lhs = a.ForAllVar(var);
      AssignmentSet rhs = a;
      rhs.Complement();
      rhs = rhs.ExistsVar(var);
      rhs.Complement();
      EXPECT_EQ(lhs, rhs);
    }
  }
}

TEST(AssignmentSetTest, Equality) {
  AssignmentSet eq = AssignmentSet::Equality(3, 2, 0, 1);
  EXPECT_EQ(eq.Count(), 3u);
  EXPECT_TRUE(eq.TestAssignment({2, 2}));
  EXPECT_FALSE(eq.TestAssignment({2, 1}));
  AssignmentSet self = AssignmentSet::Equality(3, 2, 1, 1);
  EXPECT_TRUE(self.IsFull());
}

TEST(AssignmentSetTest, VarEqualsConst) {
  AssignmentSet s = AssignmentSet::VarEqualsConst(3, 2, 1, 2);
  EXPECT_EQ(s.Count(), 3u);
  EXPECT_TRUE(s.TestAssignment({0, 2}));
  EXPECT_FALSE(s.TestAssignment({2, 0}));
}

TEST(AssignmentSetTest, FromAtomBinaryRelation) {
  Relation e = Relation::FromTuples(2, {{0, 1}, {1, 2}});
  // E(x2, x1) over 3 vars.
  AssignmentSet a = AssignmentSet::FromAtom(3, 3, e, {1, 0});
  // Satisfied iff (x2,x1) in E; x3 free.
  EXPECT_EQ(a.Count(), 6u);
  EXPECT_TRUE(a.TestAssignment({1, 0, 0}));
  EXPECT_TRUE(a.TestAssignment({2, 1, 2}));
  EXPECT_FALSE(a.TestAssignment({0, 1, 0}));
}

TEST(AssignmentSetTest, FromAtomRepeatedVariable) {
  Relation r = Relation::FromTuples(2, {{0, 0}, {0, 1}, {2, 2}});
  // R(x1, x1): diagonal selection.
  AssignmentSet a = AssignmentSet::FromAtom(3, 2, r, {0, 0});
  EXPECT_TRUE(a.TestAssignment({0, 0}));
  EXPECT_TRUE(a.TestAssignment({2, 1}));
  EXPECT_FALSE(a.TestAssignment({1, 0}));
}

TEST(AssignmentSetTest, FromAtomZeroArity) {
  AssignmentSet t =
      AssignmentSet::FromAtom(3, 2, Relation::Proposition(true), {});
  EXPECT_TRUE(t.IsFull());
  AssignmentSet f =
      AssignmentSet::FromAtom(3, 2, Relation::Proposition(false), {});
  EXPECT_TRUE(f.Empty());
}

TEST(AssignmentSetTest, RemapReadsThroughSubstitution) {
  // Cube over (x1,x2) domain 3: contains iff x1 == 2.
  AssignmentSet cube = AssignmentSet::VarEqualsConst(3, 2, 0, 2);
  // Remap target x1 <- source x2: result[a] = cube[a with x1 := a.x2],
  // i.e., contains iff a.x2 == 2.
  AssignmentSet out = cube.Remap({0}, {1});
  EXPECT_EQ(out, AssignmentSet::VarEqualsConst(3, 2, 1, 2));
}

TEST(AssignmentSetTest, RemapSwapIsSimultaneous) {
  // Cube contains single point (0, 1). Remap targets (x1,x2) <- (x2,x1)
  // must read both sources from the original assignment: the result
  // contains exactly (1, 0).
  AssignmentSet cube(2, 2);
  cube.SetAssignment({0, 1});
  AssignmentSet out = cube.Remap({0, 1}, {1, 0});
  EXPECT_EQ(out.Count(), 1u);
  EXPECT_TRUE(out.TestAssignment({1, 0}));
}

TEST(AssignmentSetTest, ToRelationProjects) {
  AssignmentSet a(3, 3);
  a.SetAssignment({0, 1, 2});
  a.SetAssignment({0, 1, 1});
  Relation r = a.ToRelation({0, 1});
  EXPECT_EQ(r, Relation::FromTuples(2, {{0, 1}}));
  Relation full = a.ToRelation({2, 0});
  EXPECT_EQ(full, Relation::FromTuples(2, {{1, 0}, {2, 0}}));
}

TEST(AssignmentSetTest, FromAtomToRelationRoundTrip) {
  Rng rng(11);
  Relation r = RandomRelation(4, 2, 0.3, rng);
  AssignmentSet a = AssignmentSet::FromAtom(4, 2, r, {0, 1});
  EXPECT_EQ(a.ToRelation({0, 1}), r);
}

TEST(AssignmentSetTest, HashChangesWithContent) {
  AssignmentSet a(3, 2), b(3, 2);
  EXPECT_EQ(a.Hash(), b.Hash());
  b.SetAssignment({1, 1});
  EXPECT_NE(a.Hash(), b.Hash());
}

}  // namespace
}  // namespace bvq
