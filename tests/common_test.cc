#include <gtest/gtest.h>

#include <set>

#include "common/bitset.h"
#include "common/index.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace bvq {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("x");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> SumOfTwo(int a, int b) {
  int va = 0;
  BVQ_ASSIGN_OR_RETURN(va, ParsePositive(a));
  int vb = 0;
  BVQ_ASSIGN_OR_RETURN(vb, ParsePositive(b));  // second use, same scope
  return va + vb;
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto ok = SumOfTwo(2, 3);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 5);
  auto bad = SumOfTwo(2, -1);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, ReturnIfErrorMacro) {
  auto fn = [](bool fail) -> Status {
    BVQ_RETURN_IF_ERROR(fail ? Status::Internal("boom") : Status::OK());
    return Status::OK();
  };
  EXPECT_TRUE(fn(false).ok());
  EXPECT_EQ(fn(true).code(), StatusCode::kInternal);
}

TEST(BitsetTest, SetTestReset) {
  DynamicBitset b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_EQ(b.Count(), 0u);
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 3u);
  b.Reset(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 2u);
}

TEST(BitsetTest, FlipAllRespectsPadding) {
  DynamicBitset b(70);
  b.FlipAll();
  EXPECT_EQ(b.Count(), 70u);
  b.FlipAll();
  EXPECT_EQ(b.Count(), 0u);
}

TEST(BitsetTest, FullConstructor) {
  DynamicBitset b(100, true);
  EXPECT_EQ(b.Count(), 100u);
}

TEST(BitsetTest, SetOperations) {
  DynamicBitset a(80), b(80);
  a.Set(1);
  a.Set(40);
  a.Set(79);
  b.Set(40);
  b.Set(50);
  DynamicBitset i = a & b;
  EXPECT_EQ(i.Count(), 1u);
  EXPECT_TRUE(i.Test(40));
  DynamicBitset u = a | b;
  EXPECT_EQ(u.Count(), 4u);
  DynamicBitset d = a;
  d.SubtractInPlace(b);
  EXPECT_EQ(d.Count(), 2u);
  EXPECT_FALSE(d.Test(40));
  EXPECT_TRUE(a.IsSubsetOf(u));
  EXPECT_TRUE(i.IsSubsetOf(a));
  EXPECT_FALSE(u.IsSubsetOf(a));
  DynamicBitset e(80);
  e.Set(0);
  EXPECT_TRUE(e.IsDisjointFrom(a));
  EXPECT_FALSE(a.IsDisjointFrom(b));
}

TEST(BitsetTest, FindNext) {
  DynamicBitset b(200);
  b.Set(3);
  b.Set(64);
  b.Set(199);
  EXPECT_EQ(b.FindFirst(), 3u);
  EXPECT_EQ(b.FindNext(4), 64u);
  EXPECT_EQ(b.FindNext(65), 199u);
  EXPECT_EQ(b.FindNext(200), 200u);
  DynamicBitset empty(10);
  EXPECT_EQ(empty.FindFirst(), 10u);
}

TEST(BitsetTest, FindNextWordBoundaries) {
  // Set bits exactly at word edges: last bit of word 0, first of word 1,
  // last of word 1.
  DynamicBitset b(256);
  b.Set(63);
  b.Set(64);
  b.Set(127);
  EXPECT_EQ(b.FindFirst(), 63u);
  EXPECT_EQ(b.FindNext(63), 63u);  // `from` itself counts
  EXPECT_EQ(b.FindNext(64), 64u);
  EXPECT_EQ(b.FindNext(65), 127u);
  EXPECT_EQ(b.FindNext(127), 127u);
  EXPECT_EQ(b.FindNext(128), 256u);  // nothing past the last set bit

  // A bitset whose size lands exactly on a word boundary must report
  // size(), not scan a phantom word.
  DynamicBitset w(64);
  EXPECT_EQ(w.FindNext(0), 64u);
  w.Set(63);
  EXPECT_EQ(w.FindNext(63), 63u);
  EXPECT_EQ(w.FindNext(64), 64u);

  // Size one past a boundary: only the first bit of the second word exists.
  DynamicBitset o(65);
  o.Set(64);
  EXPECT_EQ(o.FindFirst(), 64u);
  EXPECT_EQ(o.FindNext(65), 65u);
}

TEST(BitsetTest, HashDistinguishesContent) {
  DynamicBitset a(64), b(64);
  EXPECT_EQ(a.Hash(), b.Hash());
  b.Set(10);
  EXPECT_NE(a.Hash(), b.Hash());
}

TEST(TupleIndexerTest, RankUnrankRoundTrip) {
  TupleIndexer idx(5, 3);
  EXPECT_EQ(idx.NumTuples(), 125u);
  for (std::size_t r = 0; r < idx.NumTuples(); ++r) {
    std::vector<uint32_t> t = idx.Unrank(r);
    EXPECT_EQ(idx.Rank(t), r);
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(idx.Digit(r, j), t[j]);
    }
  }
}

TEST(TupleIndexerTest, WithDigit) {
  TupleIndexer idx(4, 3);
  const std::size_t r = idx.Rank(std::vector<uint32_t>{1, 2, 3});
  const std::size_t r2 = idx.WithDigit(r, 1, 0);
  EXPECT_EQ(idx.Unrank(r2), (std::vector<uint32_t>{1, 0, 3}));
}

TEST(TupleIndexerTest, ZeroArity) {
  TupleIndexer idx(7, 0);
  EXPECT_EQ(idx.NumTuples(), 1u);
}

TEST(TupleIndexerTest, ExceedsDetectsOverflow) {
  EXPECT_TRUE(TupleIndexer::Exceeds(1000, 20, std::size_t{1} << 40));
  EXPECT_FALSE(TupleIndexer::Exceeds(10, 3, 1000));
  EXPECT_TRUE(TupleIndexer::Exceeds(10, 4, 1000));
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next64(), b.Next64());
  }
}

TEST(RngTest, BelowInRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.Below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit
}

TEST(RngTest, RangeInclusive) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    const int64_t v = rng.Range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(StringsTest, StrCat) {
  EXPECT_EQ(StrCat("a", 1, "b", 2.5), "a1b2.5");
}

TEST(StringsTest, StrJoin) {
  std::vector<int> xs = {1, 2, 3};
  EXPECT_EQ(StrJoin(xs, ","), "1,2,3");
  EXPECT_EQ(StrJoin(std::vector<int>{}, ","), "");
}

TEST(StringsTest, StrSplitDropsEmpty) {
  auto parts = StrSplit("a,,b,c,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, Strip) {
  EXPECT_EQ(StripAsciiWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripAsciiWhitespace("   "), "");
}

TEST(StringsTest, TrimLeft) {
  EXPECT_EQ(TrimLeft("  \t path/to file "), "path/to file ");
  EXPECT_EQ(TrimLeft("nothing"), "nothing");
  EXPECT_EQ(TrimLeft("   "), "");
  EXPECT_EQ(TrimLeft(""), "");
}

}  // namespace
}  // namespace bvq
