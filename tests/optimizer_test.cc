#include <gtest/gtest.h>

#include "common/rng.h"
#include "db/generators.h"
#include "eval/bounded_eval.h"
#include "eval/naive_eval.h"
#include "logic/analysis.h"
#include "logic/parser.h"
#include "optimizer/acyclic.h"
#include "optimizer/conjunctive_query.h"
#include "optimizer/variable_min.h"

namespace bvq {
namespace optimizer {
namespace {

TEST(CqParserTest, ParsesQuery) {
  auto cq = ParseCq("Q(X,Y) :- R(X,Z), S(Z,Y).");
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  EXPECT_EQ(cq->head_vars.size(), 2u);
  EXPECT_EQ(cq->atoms.size(), 2u);
  EXPECT_EQ(cq->num_vars, 3u);
  EXPECT_EQ(cq->ToString(), "Q(X0,X1) :- R(X0,X2), S(X2,X1).");
}

TEST(CqParserTest, Errors) {
  EXPECT_FALSE(ParseCq("Q(X)").ok());
  EXPECT_FALSE(ParseCq("Q(X) :- R(lower).").ok());
  EXPECT_FALSE(ParseCq("Q(Y) :- R(X,X).").ok());  // unbound head var
}

TEST(CqTest, ToFormulaQuantifiesNonHeadVars) {
  auto cq = ParseCq("Q(X) :- R(X,Z), R(Z,W).");
  ASSERT_TRUE(cq.ok());
  FormulaPtr f = cq->ToFormula();
  EXPECT_EQ(FreeVars(f), std::set<std::size_t>{0});
  EXPECT_EQ(NumVariables(f), 3u);
}

TEST(CqEvalTest, NaiveMatchesFormulaEvaluation) {
  Rng rng(1234);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 3 + rng.Below(3);
    Database db(n);
    ASSERT_TRUE(db.AddRelation("R", RandomRelation(n, 2, 0.35, rng)).ok());
    ConjunctiveQuery cq = RandomCq(4, 4, 2, "R", rng);

    auto direct = EvaluateCqNaive(cq, db);
    ASSERT_TRUE(direct.ok()) << cq.ToString();

    NaiveEvaluator naive(db);
    Query q{cq.head_vars, cq.ToFormula()};
    auto via_formula = naive.EvaluateQuery(q);
    ASSERT_TRUE(via_formula.ok());
    EXPECT_EQ(*direct, *via_formula) << cq.ToString();
  }
}

// --- acyclicity and Yannakakis ------------------------------------------------

TEST(AcyclicTest, ChainIsAcyclicCycleIsNot) {
  EXPECT_TRUE(IsAcyclic(ChainQuery(5, "R")));
  EXPECT_TRUE(IsAcyclic(StarQuery(4, "R")));
  EXPECT_FALSE(IsAcyclic(CycleQuery(3, "R")));
  EXPECT_FALSE(IsAcyclic(CycleQuery(5, "R")));
}

TEST(AcyclicTest, TriangleWithCoveringEdgeIsAcyclic) {
  // R(x,y), R(y,z), R(z,x), T(x,y,z): the ternary atom covers the cycle.
  ConjunctiveQuery cq = CycleQuery(3, "R");
  cq.atoms.push_back({"T", {0, 1, 2}});
  EXPECT_TRUE(IsAcyclic(cq));
}

TEST(AcyclicTest, JoinTreeShape) {
  auto tree = GyoJoinTree(ChainQuery(4, "R"));
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->parent.size(), 4u);
  EXPECT_EQ(tree->elimination_order.size(), 4u);
  // Exactly one root.
  int roots = 0;
  for (std::ptrdiff_t p : tree->parent) {
    if (p < 0) ++roots;
  }
  EXPECT_EQ(roots, 1);
}

TEST(YannakakisTest, MatchesNaiveOnAcyclicQueries) {
  Rng rng(555);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 4 + rng.Below(4);
    Database db(n);
    ASSERT_TRUE(db.AddRelation("R", RandomRelation(n, 2, 0.3, rng)).ok());
    ConjunctiveQuery cq =
        rng.Bernoulli(0.5) ? ChainQuery(2 + rng.Below(4), "R")
                           : StarQuery(2 + rng.Below(4), "R");
    auto naive = EvaluateCqNaive(cq, db);
    ASSERT_TRUE(naive.ok());
    YannakakisStats stats;
    auto yan = EvaluateYannakakis(cq, db, &stats);
    ASSERT_TRUE(yan.ok()) << yan.status().ToString();
    EXPECT_EQ(*naive, *yan) << cq.ToString();
    EXPECT_GT(stats.semijoins, 0u);
  }
}

TEST(YannakakisTest, RejectsCyclicQueries) {
  Database db(3);
  ASSERT_TRUE(db.AddRelation("R", CycleGraph(3)).ok());
  auto r = EvaluateYannakakis(CycleQuery(3, "R"), db);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(YannakakisTest, BoundedIntermediates) {
  // On a selective chain, the semijoin reducer keeps intermediates small
  // while the naive plan's first join explodes.
  const std::size_t n = 40;
  Database db(n);
  Rng rng(77);
  ASSERT_TRUE(db.AddRelation("R", RandomRelation(n, 2, 0.25, rng)).ok());
  ConjunctiveQuery cq = ChainQuery(4, "R");
  // Make the query selective: the endpoint is restricted by a sparse
  // unary relation (keeping the hypergraph acyclic).
  RelationBuilder sparse(1);
  Value v = 0;
  sparse.Add(&v);
  ASSERT_TRUE(db.AddRelation("Rare", sparse.Build()).ok());
  cq.atoms.push_back({"Rare", {4}});

  CqEvalStats naive_stats;
  auto naive = EvaluateCqNaive(cq, db, &naive_stats);
  ASSERT_TRUE(naive.ok());
  YannakakisStats yan_stats;
  auto yan = EvaluateYannakakis(cq, db, &yan_stats);
  ASSERT_TRUE(yan.ok());
  EXPECT_EQ(*naive, *yan);
  EXPECT_LT(yan_stats.max_intermediate_tuples,
            naive_stats.max_intermediate_tuples);
}

// --- variable minimization ------------------------------------------------------

TEST(VariableMinTest, ChainWidthIsThree) {
  ConjunctiveQuery cq = ChainQuery(8, "R");
  auto exact = ExactMinWidthOrder(cq);
  ASSERT_TRUE(exact.ok());
  // Paths have treewidth 1, but the endpoints are head variables kept
  // live throughout, so the bag maxes at 3 = the paper's FO^3.
  EXPECT_EQ(exact->width, 3u);
  EliminationPlan greedy = MinDegreeOrder(cq);
  EXPECT_EQ(greedy.width, 3u);
}

TEST(VariableMinTest, BooleanChainWidthIsTwo) {
  ConjunctiveQuery cq = ChainQuery(8, "R");
  cq.head_vars = {0};  // only the start is exported
  auto exact = ExactMinWidthOrder(cq);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact->width, 2u);
}

TEST(VariableMinTest, CycleNeedsMoreThanTree) {
  ConjunctiveQuery cq = CycleQuery(6, "R");
  auto exact = ExactMinWidthOrder(cq);
  ASSERT_TRUE(exact.ok());
  // Cycles have treewidth 2: bags of size 3.
  EXPECT_EQ(exact->width, 3u);
}

TEST(VariableMinTest, OrderWidthMatchesPlanWidth) {
  Rng rng(31415);
  for (int trial = 0; trial < 20; ++trial) {
    ConjunctiveQuery cq = RandomCq(6, 7, 1, "R", rng);
    EliminationPlan plan = MinDegreeOrder(cq);
    EXPECT_EQ(OrderWidth(cq, plan.order), plan.width) << cq.ToString();
    auto exact = ExactMinWidthOrder(cq);
    ASSERT_TRUE(exact.ok());
    EXPECT_LE(exact->width, plan.width) << cq.ToString();
  }
}

TEST(VariableMinTest, RewriteUsesPlannedWidth) {
  ConjunctiveQuery cq = ChainQuery(9, "R");
  auto plan = ExactMinWidthOrder(cq);
  ASSERT_TRUE(plan.ok());
  auto rewrite = RewriteWithFewVariables(cq, plan->order);
  ASSERT_TRUE(rewrite.ok()) << rewrite.status().ToString();
  EXPECT_EQ(rewrite->num_vars, 3u);
  EXPECT_LE(NumVariables(rewrite->query.formula), 3u);
}

TEST(VariableMinTest, RewriteRejectsBadOrders) {
  ConjunctiveQuery cq = ChainQuery(3, "R");
  EXPECT_FALSE(RewriteWithFewVariables(cq, {}).ok());           // missing
  EXPECT_FALSE(RewriteWithFewVariables(cq, {0, 1, 2}).ok());    // head var
  EXPECT_FALSE(RewriteWithFewVariables(cq, {1, 1, 2}).ok());    // repeat
}

TEST(VariableMinTest, RewritePreservesSemantics) {
  Rng rng(2718);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 3 + rng.Below(3);
    Database db(n);
    ASSERT_TRUE(db.AddRelation("R", RandomRelation(n, 2, 0.35, rng)).ok());
    ConjunctiveQuery cq = RandomCq(5, 5, 1 + rng.Below(2), "R", rng);

    auto expected = EvaluateCqNaive(cq, db);
    ASSERT_TRUE(expected.ok());

    for (const auto& plan :
         {MinDegreeOrder(cq), *ExactMinWidthOrder(cq)}) {
      auto rewrite = RewriteWithFewVariables(cq, plan.order);
      ASSERT_TRUE(rewrite.ok())
          << cq.ToString() << ": " << rewrite.status().ToString();
      EXPECT_LE(NumVariables(rewrite->query.formula), rewrite->num_vars);
      BoundedEvaluator eval(db, rewrite->num_vars);
      auto got = eval.EvaluateQuery(rewrite->query);
      ASSERT_TRUE(got.ok()) << cq.ToString();
      EXPECT_EQ(*got, *expected)
          << cq.ToString() << "\nrewritten: "
          << FormulaToString(rewrite->query.formula);
    }
  }
}

TEST(VariableMinTest, EliminationEngineMatchesNaive) {
  Rng rng(161803);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 3 + rng.Below(4);
    Database db(n);
    ASSERT_TRUE(db.AddRelation("R", RandomRelation(n, 2, 0.35, rng)).ok());
    ConjunctiveQuery cq = RandomCq(5, 5, 1 + rng.Below(2), "R", rng);

    auto expected = EvaluateCqNaive(cq, db);
    ASSERT_TRUE(expected.ok());
    EliminationPlan plan = MinDegreeOrder(cq);
    CqEvalStats stats;
    auto got = EvaluateByElimination(cq, plan.order, db, &stats);
    ASSERT_TRUE(got.ok()) << cq.ToString() << ": "
                          << got.status().ToString();
    EXPECT_EQ(*got, *expected) << cq.ToString();
    // The bounded-arity discipline holds: no intermediate exceeds the
    // plan width.
    EXPECT_LE(stats.max_intermediate_arity, plan.width) << cq.ToString();
  }
}

TEST(VariableMinTest, EliminationEngineRejectsBadOrders) {
  Database db(2);
  ASSERT_TRUE(db.AddRelation("R", Relation(2)).ok());
  ConjunctiveQuery cq = ChainQuery(3, "R");
  EXPECT_FALSE(EvaluateByElimination(cq, {}, db).ok());
}

TEST(VariableMinTest, IntroExampleManagerSecretary) {
  // The paper's introduction: employees earning less than their manager's
  // secretary. Query:
  //   Q(E) :- EMP(E,D), MGR(D,M), SCY(M,C), SAL(E,S1), SAL(C,S2),
  //           LT(S1,S2).
  auto cq = ParseCq(
      "Q(E) :- EMP(E,D), MGR(D,M), SCY(M,C), SAL(E,S1), SAL(C,S2), "
      "LT(S1,S2).");
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  // The query's hypergraph closes a 6-cycle through the schema
  // (E-D-M-C-S2-S1-E), so it is *not* acyclic — which is exactly why the
  // paper argues via bounded intermediate arity rather than acyclicity.
  EXPECT_FALSE(IsAcyclic(*cq));
  auto plan = ExactMinWidthOrder(*cq);
  ASSERT_TRUE(plan.ok());
  // The paper reports maximal intermediate arity 4 for the good plan.
  EXPECT_LE(plan->width, 4u);

  Rng rng(1);
  Database db = EmployeeDatabase(12, 3, 6, rng);
  auto expected = EvaluateCqNaive(*cq, db);
  ASSERT_TRUE(expected.ok());
  auto rewrite = RewriteWithFewVariables(*cq, plan->order);
  ASSERT_TRUE(rewrite.ok());
  BoundedEvaluator eval(db, rewrite->num_vars);
  auto got = eval.EvaluateQuery(rewrite->query);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, *expected);
}

}  // namespace
}  // namespace optimizer
}  // namespace bvq
