#include <gtest/gtest.h>

#include "common/rng.h"
#include "db/generators.h"
#include "eval/bounded_eval.h"
#include "eval/certificate.h"
#include "logic/builder.h"
#include "logic/nnf.h"
#include "logic/parser.h"
#include "logic/random_formula.h"

namespace bvq {
namespace {

Database GraphDb(std::size_t n, const Relation& edges) {
  Database db(n);
  Status s = db.AddRelation("E", edges);
  EXPECT_TRUE(s.ok());
  return db;
}

FormulaPtr TransitiveClosure() {
  return *ParseFormula(
      "[lfp T(x1,x2) . E(x1,x2) | exists x3 . (E(x1,x3) & exists x1 . "
      "(x1 = x3 & T(x1,x2)))](x1,x2)");
}

TEST(ImmediateFixpointsTest, FindsOutermostOnly) {
  auto f = ParseFormula(
      "[lfp T(x1) . [gfp U(x1) . U(x1)](x1) | T(x1)](x1) & "
      "[gfp V(x1) . V(x1)](x1)");
  auto nodes = ImmediateFixpoints(*f);
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_EQ(nodes[0]->rel_var(), "T");
  EXPECT_EQ(nodes[1]->rel_var(), "V");
}

TEST(CertificateTest, RequiresNnf) {
  Database db = GraphDb(3, PathGraph(3));
  CertificateSystem sys(db, 3);
  auto f = ParseFormula("!([lfp T(x1) . T(x1) | E(x1,x1)](x1))");
  EXPECT_FALSE(sys.Generate(*f).ok());
  auto nnf = NegationNormalForm(*f);
  ASSERT_TRUE(nnf.ok());
  EXPECT_TRUE(sys.Generate(*nnf).ok());
}

TEST(CertificateTest, RejectsPfp) {
  Database db(2);
  CertificateSystem sys(db, 1);
  auto f = ParseFormula("[pfp X(x1) . !(X(x1))](x1)");
  auto r = sys.Generate(*f);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

TEST(CertificateTest, GenerateThenVerifyLfp) {
  Database db = GraphDb(5, PathGraph(5));
  CertificateSystem sys(db, 3);
  FormulaPtr f = TransitiveClosure();
  auto cert = sys.Generate(f);
  ASSERT_TRUE(cert.ok()) << cert.status().ToString();
  auto verified = sys.Verify(f, *cert);
  ASSERT_TRUE(verified.ok()) << verified.status().ToString();

  BoundedEvaluator eval(db, 3);
  auto direct = eval.Evaluate(f);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(*verified, *direct);
}

TEST(CertificateTest, GfpWitnessIsSingleSet) {
  Database db = GraphDb(4, CycleGraph(4));
  CertificateSystem sys(db, 1);
  auto f = ParseFormula("[gfp S(x1) . exists x1 . S(x1)](x1)");
  // NOTE: body re-binds x1 inside exists; gfp = D (every element,
  // since S = D is a fixpoint).
  auto cert = sys.Generate(*f);
  ASSERT_TRUE(cert.ok()) << cert.status().ToString();
  ASSERT_EQ(cert->roots.size(), 1u);
  EXPECT_EQ(cert->roots[0].chain.size(), 1u);
  auto verified = sys.Verify(*f, *cert);
  ASSERT_TRUE(verified.ok());
  EXPECT_TRUE(verified->IsFull());
}

TEST(CertificateTest, MembershipDecision) {
  Database db = GraphDb(5, PathGraph(5));
  CertificateSystem sys(db, 3);
  FormulaPtr f = TransitiveClosure();
  auto cert = sys.Generate(f);
  ASSERT_TRUE(cert.ok());
  auto yes = sys.VerifyMembership(f, *cert, {0, 4, 0});
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(*yes);
  auto no = sys.VerifyMembership(f, *cert, {4, 0, 0});
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(*no);
}

TEST(CertificateTest, TamperedChainIsRejected) {
  Database db = GraphDb(5, PathGraph(5));
  CertificateSystem sys(db, 3);
  FormulaPtr f = TransitiveClosure();
  auto cert = sys.Generate(f);
  ASSERT_TRUE(cert.ok());
  ASSERT_FALSE(cert->roots.empty());
  ASSERT_FALSE(cert->roots[0].chain.empty());
  // Claim an extra pair (4,0) in the first stage: (4,0) is not an edge,
  // so stage 1 is no longer contained in Phi(empty).
  FormulaCertificate tampered = *cert;
  AssignmentSet& q1 = tampered.roots[0].chain[0];
  AssignmentSet bogus = AssignmentSet::VarEqualsConst(5, 3, 0, 4);
  bogus.AndWith(AssignmentSet::VarEqualsConst(5, 3, 1, 0));
  q1.OrWith(bogus);
  auto r = sys.Verify(f, tampered);
  EXPECT_FALSE(r.ok());
}

TEST(CertificateTest, NonIncreasingChainIsRejected) {
  Database db = GraphDb(4, PathGraph(4));
  CertificateSystem sys(db, 3);
  FormulaPtr f = TransitiveClosure();
  auto cert = sys.Generate(f);
  ASSERT_TRUE(cert.ok());
  FormulaCertificate tampered = *cert;
  ASSERT_GE(tampered.roots[0].chain.size(), 2u);
  // Swap two chain elements: no longer increasing.
  std::swap(tampered.roots[0].chain[0], tampered.roots[0].chain[1]);
  EXPECT_FALSE(sys.Verify(f, tampered).ok());
}

TEST(CertificateTest, WrongShapeIsRejected) {
  Database db = GraphDb(3, PathGraph(3));
  CertificateSystem sys(db, 3);
  FormulaPtr f = TransitiveClosure();
  FormulaCertificate empty_cert;
  EXPECT_FALSE(sys.Verify(f, empty_cert).ok());
}

TEST(CertificateTest, SoundnessNeverOverclaims) {
  // Whatever we put in a certificate, if Verify succeeds then every
  // verified assignment truly satisfies the formula. Fuzz with random
  // mutations; verified => subset of truth.
  Rng rng(5150);
  Database db = GraphDb(4, PathGraph(4));
  CertificateSystem sys(db, 3);
  FormulaPtr f = TransitiveClosure();
  BoundedEvaluator eval(db, 3);
  auto truth = eval.Evaluate(f);
  ASSERT_TRUE(truth.ok());
  auto cert = sys.Generate(f);
  ASSERT_TRUE(cert.ok());
  for (int trial = 0; trial < 50; ++trial) {
    FormulaCertificate mutated = *cert;
    // Flip a few random bits in random chain elements.
    for (int flip = 0; flip < 3; ++flip) {
      auto& chain = mutated.roots[0].chain;
      AssignmentSet& set = chain[rng.Below(chain.size())];
      const std::size_t bit = rng.Below(set.indexer().NumTuples());
      if (set.Test(bit)) {
        set.mutable_bits().Reset(bit);
      } else {
        set.Set(bit);
      }
    }
    auto verified = sys.Verify(f, mutated);
    if (verified.ok()) {
      EXPECT_TRUE(verified->IsSubsetOf(*truth));
    }
  }
}

TEST(CertificateTest, NpAndCoNpSidesComposeToExactAnswer) {
  // Theorem 3.5's NP cap co-NP character, executably: certify phi and
  // not-phi; the two verified sets must be complementary.
  Database db = GraphDb(4, CycleGraph(4));
  ASSERT_TRUE(db.AddRelation("P", Relation::FromTuples(1, {{0}, {2}})).ok());
  auto raw = ParseFormula(
      "[gfp S(x1) . [lfp T(x2) . forall x3 . (E(x2,x3) -> "
      "(S(x3) | P(x3) & T(x3)))](x1)](x1)");
  ASSERT_TRUE(raw.ok());
  auto phi_nnf = NegationNormalForm(*raw);
  ASSERT_TRUE(phi_nnf.ok());
  FormulaPtr phi = *phi_nnf;
  auto nphi = NegationNormalForm(Not(phi));
  ASSERT_TRUE(nphi.ok());

  CertificateSystem sys(db, 3);
  auto cert_pos = sys.Generate(phi);
  ASSERT_TRUE(cert_pos.ok()) << cert_pos.status().ToString();
  auto pos = sys.Verify(phi, *cert_pos);
  ASSERT_TRUE(pos.ok());

  auto cert_neg = sys.Generate(*nphi);
  ASSERT_TRUE(cert_neg.ok()) << cert_neg.status().ToString();
  auto neg = sys.Verify(*nphi, *cert_neg);
  ASSERT_TRUE(neg.ok());

  AssignmentSet complement = *neg;
  complement.Complement();
  EXPECT_EQ(*pos, complement);
}

TEST(CertificateTest, RandomFormulasGenerateAndVerifyExactly) {
  Rng rng(808);
  RandomFormulaOptions opts;
  opts.num_vars = 2;
  opts.max_size = 16;
  opts.predicates = {{"E", 2}, {"P", 1}};
  opts.allow_fixpoints = true;
  opts.allow_iff = false;
  int attempted = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = 2 + rng.Below(2);
    Database db(n);
    ASSERT_TRUE(db.AddRelation("E", RandomRelation(n, 2, 0.4, rng)).ok());
    ASSERT_TRUE(db.AddRelation("P", RandomRelation(n, 1, 0.5, rng)).ok());
    auto f = NegationNormalForm(RandomFormula(opts, rng));
    ASSERT_TRUE(f.ok());

    CertificateSystem sys(db, 2);
    auto cert = sys.Generate(*f);
    ASSERT_TRUE(cert.ok()) << FormulaToString(*f) << ": "
                           << cert.status().ToString();
    auto verified = sys.Verify(*f, *cert);
    ASSERT_TRUE(verified.ok()) << FormulaToString(*f);

    BoundedEvaluator eval(db, 2);
    auto direct = eval.Evaluate(*f);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(*verified, *direct) << FormulaToString(*f);
    ++attempted;
  }
  EXPECT_EQ(attempted, 60);
}

TEST(CertificateTest, VerificationIterationBound) {
  // Theorem 3.5: verification performs at most (alternation depth) * n^k
  // body evaluations plus one per formula. Check the l*n^k bound on an
  // alternating formula.
  Database db = GraphDb(5, CycleGraph(5));
  ASSERT_TRUE(db.AddRelation("P", Relation::FromTuples(1, {{0}})).ok());
  auto raw = ParseFormula(
      "[gfp S(x1) . [lfp T(x2) . forall x3 . (E(x2,x3) -> "
      "(S(x3) | P(x3) & T(x3)))](x1)](x1)");
  auto f = NegationNormalForm(*raw);
  ASSERT_TRUE(f.ok());
  CertificateSystem sys(db, 3);
  auto cert = sys.Generate(*f);
  ASSERT_TRUE(cert.ok()) << cert.status().ToString();
  sys.ResetStats();
  ASSERT_TRUE(sys.Verify(*f, *cert).ok());
  const std::size_t n_to_k = 5 * 5 * 5;
  // l = 2 alternation levels; +1 for the top-level formula evaluation.
  EXPECT_LE(sys.stats().body_evals, 2 * n_to_k + 1);
}

}  // namespace
}  // namespace bvq
