// The serving layer: FIFO admission control (budget, cap, queue, cancel),
// session lifecycle and governor pooling, and the Server end-to-end — the
// load-bearing properties being that a served answer is byte-identical to a
// direct evaluator run, that an over-budget admission is rejected while
// running queries finish unaffected, and that a remote cancel lands
// mid-fixpoint as a sticky Cancelled with partial resource stats.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/resource.h"
#include "common/status.h"
#include "db/database.h"
#include "db/generators.h"
#include "eval/bounded_eval.h"
#include "logic/parser.h"
#include "serve/admission.h"
#include "serve/server.h"
#include "serve/session.h"

namespace bvq::serve {
namespace {

using std::chrono::milliseconds;

constexpr char kTcQuery[] =
    "(x1,x2) [lfp T(x1,x2) . E(x1,x2) | exists x3 . (E(x1,x3) & "
    "exists x1 . (x1 = x3 & T(x1,x2)))](x1,x2)";

// PFP binary counter over a strict order: the orbit has length 2^n, so with
// n = 18 the fixpoint runs for ~260k stages — plenty of time to cancel it.
constexpr char kCounterQuery[] =
    "(x1) [pfp X(x1) . !(X(x1) <-> forall x2 . (Lt(x2,x1) -> X(x2)))](x1)";

Database CycleDb(std::size_t n) {
  Database db(n);
  EXPECT_TRUE(db.AddRelation("E", CycleGraph(n)).ok());
  return db;
}

Database CounterDb(std::size_t n) {
  Database db(n);
  RelationBuilder lt(2);
  for (Value i = 0; i < static_cast<Value>(n); ++i) {
    for (Value j = i + 1; j < static_cast<Value>(n); ++j) lt.Add(Tuple{i, j});
  }
  EXPECT_TRUE(db.AddRelation("Lt", lt.Build()).ok());
  return db;
}

// Spins until `pred` holds or ~5 s pass; returns whether it held.
template <typename Pred>
bool WaitFor(Pred pred) {
  for (int i = 0; i < 5000; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(milliseconds(1));
  }
  return pred();
}

// --- AdmissionController ---------------------------------------------------------

TEST(AdmissionTest, UnlimitedControllerOnlyCounts) {
  AdmissionController ctl;
  auto t1 = ctl.Admit(1 << 20);
  auto t2 = ctl.Admit(1 << 20);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  const AdmissionStats s = ctl.stats();
  EXPECT_EQ(s.active_queries, 2u);
  EXPECT_EQ(s.reserved_bytes, std::size_t{2} << 20);
  EXPECT_EQ(s.admitted_total, 2u);
  EXPECT_EQ(s.rejected_total, 0u);
  t1->Release();
  t2->Release();
  EXPECT_EQ(ctl.stats().reserved_bytes, 0u);
  EXPECT_EQ(ctl.stats().active_queries, 0u);
}

TEST(AdmissionTest, SpentAggregateBudgetRejectsWhenQueueingIsOff) {
  AdmissionOptions opts;
  opts.aggregate_mem_budget_bytes = 100;
  AdmissionController ctl(opts);

  auto held = ctl.Admit(60);
  ASSERT_TRUE(held.ok());
  auto rejected = ctl.Admit(60);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  // The running admission is unaffected by the rejection.
  EXPECT_TRUE(held->valid());
  EXPECT_EQ(ctl.stats().active_queries, 1u);
  EXPECT_EQ(ctl.stats().reserved_bytes, 60u);
  EXPECT_EQ(ctl.stats().rejected_total, 1u);

  held->Release();
  auto now_fits = ctl.Admit(60);
  EXPECT_TRUE(now_fits.ok());
}

TEST(AdmissionTest, OversizeRequestRejectedImmediatelyDespiteQueue) {
  AdmissionOptions opts;
  opts.aggregate_mem_budget_bytes = 100;
  opts.queue_wait_ms = 10'000;
  AdmissionController ctl(opts);
  const auto start = std::chrono::steady_clock::now();
  auto rejected = ctl.Admit(200);  // can never fit: larger than the whole pot
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_LT(elapsed, milliseconds(1000));  // no pointless queue wait
  EXPECT_EQ(ctl.stats().queued_total, 0u);
}

TEST(AdmissionTest, QueuedRequestAdmittedWhenBudgetIsReleased) {
  AdmissionOptions opts;
  opts.aggregate_mem_budget_bytes = 100;
  opts.queue_wait_ms = 10'000;
  AdmissionController ctl(opts);

  auto held = ctl.Admit(80);
  ASSERT_TRUE(held.ok());
  auto waiting = std::async(std::launch::async, [&] { return ctl.Admit(80); });
  ASSERT_TRUE(WaitFor([&] { return ctl.stats().queue_length == 1; }));

  held->Release();
  auto admitted = waiting.get();
  ASSERT_TRUE(admitted.ok()) << admitted.status().ToString();
  EXPECT_GT(admitted->queue_wait_ms(), 0.0);
  EXPECT_EQ(ctl.stats().queued_total, 1u);
  EXPECT_EQ(ctl.stats().reserved_bytes, 80u);
}

TEST(AdmissionTest, ConcurrencyCapQueuesThenAdmits) {
  AdmissionOptions opts;
  opts.max_concurrent_queries = 1;
  opts.queue_wait_ms = 10'000;
  AdmissionController ctl(opts);

  auto held = ctl.Admit(0);
  ASSERT_TRUE(held.ok());
  auto waiting = std::async(std::launch::async, [&] { return ctl.Admit(0); });
  ASSERT_TRUE(WaitFor([&] { return ctl.stats().queue_length == 1; }));
  held->Release();
  EXPECT_TRUE(waiting.get().ok());
}

TEST(AdmissionTest, QueueTimeoutRejects) {
  AdmissionOptions opts;
  opts.max_concurrent_queries = 1;
  opts.queue_wait_ms = 50;
  AdmissionController ctl(opts);
  auto held = ctl.Admit(0);
  ASSERT_TRUE(held.ok());
  auto timed_out = ctl.Admit(0);
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), StatusCode::kResourceExhausted);
}

TEST(AdmissionTest, QueueLengthCapRejectsExtraWaiters) {
  AdmissionOptions opts;
  opts.max_concurrent_queries = 1;
  opts.queue_wait_ms = 10'000;
  opts.max_queue_length = 1;
  AdmissionController ctl(opts);
  auto held = ctl.Admit(0);
  ASSERT_TRUE(held.ok());
  auto waiting = std::async(std::launch::async, [&] { return ctl.Admit(0); });
  ASSERT_TRUE(WaitFor([&] { return ctl.stats().queue_length == 1; }));
  auto overflow = ctl.Admit(0);  // queue is full
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kResourceExhausted);
  held->Release();
  EXPECT_TRUE(waiting.get().ok());
}

TEST(AdmissionTest, CancelFlagAbandonsQueuedWait) {
  AdmissionOptions opts;
  opts.max_concurrent_queries = 1;
  opts.queue_wait_ms = 10'000;
  AdmissionController ctl(opts);
  auto held = ctl.Admit(0);
  ASSERT_TRUE(held.ok());

  std::atomic<bool> cancel{false};
  auto waiting = std::async(std::launch::async,
                            [&] { return ctl.Admit(0, &cancel); });
  ASSERT_TRUE(WaitFor([&] { return ctl.stats().queue_length == 1; }));
  cancel.store(true);
  auto cancelled = waiting.get();
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(ctl.stats().cancelled_total, 1u);
  // The holder is untouched and the queue is empty again.
  EXPECT_TRUE(held->valid());
  EXPECT_EQ(ctl.stats().queue_length, 0u);
}

// --- Session / SessionManager ----------------------------------------------------

TEST(SessionManagerTest, OpenGetCloseLifecycle) {
  SessionManager mgr;
  auto opened = mgr.Open("a", Database(4), SessionOptions{});
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(mgr.size(), 1u);

  auto dup = mgr.Open("a", Database(4), SessionOptions{});
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kInvalidArgument);

  EXPECT_TRUE(mgr.Get("a").ok());
  EXPECT_EQ(mgr.Get("b").status().code(), StatusCode::kNotFound);

  EXPECT_TRUE(mgr.Close("a").ok());
  EXPECT_EQ(mgr.Get("a").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(mgr.Close("a").code(), StatusCode::kNotFound);
  EXPECT_EQ(mgr.size(), 0u);
}

TEST(SessionTest, GovernorPoolReusesTokensAndLinksParent) {
  Session session("s", Database(4), SessionOptions{});
  auto g1 = session.AcquireGovernor();
  ASSERT_NE(g1, nullptr);
  EXPECT_EQ(g1->parent(), &session.governor());
  session.ReleaseGovernor(std::move(g1));

  auto g2 = session.AcquireGovernor();
  const Session::PoolStats stats = session.pool_stats();
  EXPECT_EQ(stats.created, 1u);
  EXPECT_EQ(stats.reused, 1u);
  EXPECT_EQ(stats.free, 0u);
  // Reuse re-arms the token: a trip from a previous query must not leak in.
  g2->Cancel("old query");
  session.ReleaseGovernor(std::move(g2));
  auto g3 = session.AcquireGovernor();
  EXPECT_TRUE(g3->Check().ok());
}

TEST(SessionTest, AdmissionReserveDerivation) {
  SessionOptions so;
  EXPECT_EQ(Session("a", Database(0), so).admission_reserve_bytes(),
            kDefaultAdmissionReserveBytes);

  so.session_limits.mem_budget_bytes = std::size_t{1} << 20;
  EXPECT_EQ(Session("b", Database(0), so).admission_reserve_bytes(),
            std::size_t{1} << 20);

  so.query_limits.mem_budget_bytes = std::size_t{2} << 20;
  EXPECT_EQ(Session("c", Database(0), so).admission_reserve_bytes(),
            std::size_t{2} << 20);

  so.admission_reserve_bytes = 12345;
  EXPECT_EQ(Session("d", Database(0), so).admission_reserve_bytes(), 12345u);
}

// --- Server end-to-end -----------------------------------------------------------

TEST(ServeTest, ServedResultIsByteIdenticalToDirectEvaluatorRun) {
  Database db = CycleDb(12);
  auto query = ParseQuery(kTcQuery);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  BoundedEvaluator direct(db, 3);
  auto expected = direct.EvaluateQuery(*query);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  const std::string want = FormatRelation(*expected, 20);

  Server server;
  ASSERT_TRUE(server.Open("s", SessionOptions{}, CycleDb(12)).ok());
  const EvalOutcome out = server.EvalSync("s", kTcQuery);
  ASSERT_TRUE(out.status.ok()) << out.status.ToString();
  EXPECT_EQ(out.payload, want);
  EXPECT_GT(out.eval_ms, 0.0);
}

TEST(ServeTest, EmptyDomainSessionEvaluatesToEmptyAnswer) {
  // An empty domain is legal: every query answer over it is the empty
  // relation (there is nothing to bind), never an error.
  Server server;
  ASSERT_TRUE(server.Open("empty", SessionOptions{}, Database(0)).ok());
  const EvalOutcome out = server.EvalSync("empty", "(x1) x1 = x1");
  ASSERT_TRUE(out.status.ok()) << out.status.ToString();
  EXPECT_NE(out.payload.find("0 tuple(s)"), std::string::npos);
}

TEST(ServeTest, UnknownSessionFailsWithNotFound) {
  Server server;
  const EvalOutcome out = server.EvalSync("ghost", "(x1) x1 = x1");
  ASSERT_FALSE(out.status.ok());
  EXPECT_EQ(out.status.code(), StatusCode::kNotFound);
}

TEST(ServeTest, OverBudgetAdmissionRejectedWhileRunningQueryCompletes) {
  ServeOptions so;
  so.admission.aggregate_mem_budget_bytes = std::size_t{64} << 20;
  Server server(so);

  SessionOptions big;
  big.admission_reserve_bytes = std::size_t{48} << 20;
  ASSERT_TRUE(server.Open("big", big, CycleDb(8)).ok());
  SessionOptions small;
  small.admission_reserve_bytes = std::size_t{48} << 20;
  ASSERT_TRUE(server.Open("small", small, CycleDb(4)).ok());

  // Pin the big session's query between admission (reserve held) and
  // evaluation by holding its db lock exclusively: the rejection below is
  // then guaranteed to land while the query is admitted and running.
  auto session = server.sessions().Get("big");
  ASSERT_TRUE(session.ok());
  std::promise<EvalOutcome> done;
  auto done_future = done.get_future();
  {
    std::unique_lock<std::shared_mutex> pin((*session)->db_mutex());
    auto id = server.EvalAsync("big", kTcQuery, [&](const EvalOutcome& o) {
      done.set_value(o);
    });
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ASSERT_TRUE(WaitFor(
        [&] { return server.admission().stats().active_queries >= 1; }));

    const EvalOutcome rejected = server.EvalSync("small", kTcQuery);
    ASSERT_FALSE(rejected.status.ok());
    EXPECT_EQ(rejected.status.code(), StatusCode::kResourceExhausted);
  }

  // With the lock released the admitted query runs to a clean completion,
  // unaffected by the rejection next door.
  const EvalOutcome out = done_future.get();
  ASSERT_TRUE(out.status.ok()) << out.status.ToString();
  EXPECT_FALSE(out.payload.empty());
  server.Drain();
  EXPECT_EQ(server.admission().stats().reserved_bytes, 0u);
  EXPECT_EQ(server.admission().stats().rejected_total, 1u);
}

TEST(ServeTest, RemoteCancelMidFixpointReturnsCancelledWithPartialStats) {
  Server server;
  SessionOptions so;
  so.num_vars = 2;
  ASSERT_TRUE(server.Open("long", so, CounterDb(18)).ok());

  std::promise<EvalOutcome> done;
  auto done_future = done.get_future();
  auto id = server.EvalAsync("long", kCounterQuery, [&](const EvalOutcome& o) {
    done.set_value(o);
  });
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  // Let the fixpoint actually start churning before pulling the plug.
  ASSERT_TRUE(WaitFor(
      [&] { return server.admission().stats().active_queries >= 1; }));
  std::this_thread::sleep_for(milliseconds(100));
  ASSERT_TRUE(server.Cancel(*id, "test disconnect").ok());

  const EvalOutcome out = done_future.get();
  ASSERT_FALSE(out.status.ok());
  EXPECT_EQ(out.status.code(), StatusCode::kCancelled);
  // Partial stats: the evaluation did run and was stopped mid-flight, and
  // the composite token unwound cleanly.
  EXPECT_TRUE(out.resource.stopped);
  EXPECT_GT(out.resource.checks, 0u);
  EXPECT_EQ(out.resource.mem_current_bytes, 0u);

  // Once complete the id is gone: a second cancel is NotFound.
  server.Drain();
  EXPECT_EQ(server.Cancel(*id).code(), StatusCode::kNotFound);
  // The session-level account drained too.
  auto session = server.sessions().Get("long");
  ASSERT_TRUE(session.ok());
  EXPECT_EQ((*session)->governor().stats().mem_current_bytes, 0u);
  EXPECT_EQ((*session)->queries_failed.load(), 1u);
}

TEST(ServeTest, SessionDeadlineSurvivesZeroQueryOverlay) {
  // Serving-layer regression for composite tokens: per-query limits of all
  // zeros must not erase the session deadline (see ResourceGovernor).
  Server server;
  SessionOptions so;
  so.num_vars = 2;
  so.session_limits.deadline_ms = 1;
  so.query_limits = ResourceGovernor::Limits{};  // explicit 0-overlay
  ASSERT_TRUE(server.Open("dl", so, CounterDb(18)).ok());
  std::this_thread::sleep_for(milliseconds(10));

  const EvalOutcome out = server.EvalSync("dl", kCounterQuery);
  ASSERT_FALSE(out.status.ok());
  EXPECT_EQ(out.status.code(), StatusCode::kDeadlineExceeded);
}

TEST(ServeTest, CloseCancelsInFlightQueriesOnDetachedSession) {
  Server server;
  ASSERT_TRUE(server.Open("s", SessionOptions{}, CycleDb(8)).ok());
  auto session = server.sessions().Get("s");
  ASSERT_TRUE(session.ok());

  std::promise<EvalOutcome> done;
  auto done_future = done.get_future();
  {
    std::unique_lock<std::shared_mutex> pin((*session)->db_mutex());
    auto id = server.EvalAsync("s", kTcQuery, [&](const EvalOutcome& o) {
      done.set_value(o);
    });
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(WaitFor(
        [&] { return server.admission().stats().active_queries >= 1; }));
    // Close while the query is pinned: the name goes away immediately, the
    // query finishes as Cancelled on the detached session object.
    ASSERT_TRUE(server.Close("s").ok());
    EXPECT_EQ(server.sessions().Get("s").status().code(),
              StatusCode::kNotFound);
  }
  const EvalOutcome out = done_future.get();
  ASSERT_FALSE(out.status.ok());
  EXPECT_EQ(out.status.code(), StatusCode::kCancelled);
  server.Drain();
  EXPECT_EQ(server.admission().stats().reserved_bytes, 0u);
}

TEST(ServeTest, GovernorPoolRecyclesAcrossSequentialQueries) {
  Server server;
  ASSERT_TRUE(server.Open("s", SessionOptions{}, CycleDb(6)).ok());
  for (int i = 0; i < 3; ++i) {
    const EvalOutcome out = server.EvalSync("s", "(x1,x2) E(x1,x2)");
    ASSERT_TRUE(out.status.ok()) << out.status.ToString();
  }
  auto session = server.sessions().Get("s");
  ASSERT_TRUE(session.ok());
  const Session::PoolStats stats = (*session)->pool_stats();
  EXPECT_EQ(stats.created, 1u);
  EXPECT_EQ(stats.reused, 2u);
  EXPECT_EQ((*session)->queries_ok.load(), 3u);
}

TEST(ServeTest, PerQueryBudgetTripLeavesSessionAccountClean) {
  // Regression: a per-query budget trip used to skip the forward of the
  // tripping charge into the session governor while the unwind still
  // released it there, underflowing the session's live-byte account to
  // ~2^64 and permanently failing every later query of that session.
  Server server;
  SessionOptions so;
  so.session_limits.mem_budget_bytes = std::size_t{256} << 20;
  so.query_limits.mem_budget_bytes = 16;  // far below one n^3 cube
  ASSERT_TRUE(server.Open("tight", so, CycleDb(12)).ok());

  const EvalOutcome out = server.EvalSync("tight", kTcQuery);
  ASSERT_FALSE(out.status.ok());
  EXPECT_EQ(out.status.code(), StatusCode::kResourceExhausted);

  auto session = server.sessions().Get("tight");
  ASSERT_TRUE(session.ok());
  // Exactly zero — not wrapped — and the session token itself never tripped.
  EXPECT_EQ((*session)->governor().stats().mem_current_bytes, 0u);
  EXPECT_FALSE((*session)->governor().stopped());
  EXPECT_TRUE((*session)->governor().Check().ok());
}

TEST(ServeTest, StaleCancelHandleCannotCancelReusedPooledToken) {
  // Regression: completion used to pool the per-query governor while the
  // CancelState's weak_ptr still pointed at it, so a CancelHandle held past
  // completion could trip the token after it had been Reset and re-acquired
  // by a later query, cancelling that unrelated query spuriously.
  Server server;
  ASSERT_TRUE(server.Open("s", SessionOptions{}, CycleDb(6)).ok());
  auto session = server.sessions().Get("s");
  ASSERT_TRUE(session.ok());

  CancelHandle stale;
  std::promise<EvalOutcome> done1;
  auto first = done1.get_future();
  {
    std::unique_lock<std::shared_mutex> pin((*session)->db_mutex());
    auto id = server.EvalAsync("s", "(x1,x2) E(x1,x2)",
                               [&](const EvalOutcome& o) {
                                 done1.set_value(o);
                               });
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    // Wait for the query to acquire + bind its governor, then grab the
    // cancellation capability and hold it past completion.
    ASSERT_TRUE(WaitFor(
        [&] { return (*session)->pool_stats().created >= 1; }));
    auto handle = server.Handle(*id);
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    stale = *handle;
  }
  ASSERT_TRUE(first.get().status.ok());
  server.Drain();  // the token is back in the pool now

  // Run a second query on the same session: it reuses the pooled token.
  // Fire the stale handle while that query is pinned mid-flight — it must
  // be a valid-but-harmless no-op, not a cancellation of query 2.
  std::promise<EvalOutcome> done2;
  auto second = done2.get_future();
  {
    std::unique_lock<std::shared_mutex> pin((*session)->db_mutex());
    auto id = server.EvalAsync("s", "(x1,x2) E(x1,x2)",
                               [&](const EvalOutcome& o) {
                                 done2.set_value(o);
                               });
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(WaitFor(
        [&] { return (*session)->pool_stats().reused >= 1; }));
    EXPECT_TRUE(stale.Cancel("far too late"));
  }
  const EvalOutcome out = second.get();
  ASSERT_TRUE(out.status.ok()) << out.status.ToString();
  EXPECT_EQ((*session)->queries_ok.load(), 2u);
}

// --- protocol surface ------------------------------------------------------------

TEST(ServeProtocolTest, FullSessionConversation) {
  Server server;
  std::mutex mu;
  std::vector<std::string> chunks;
  auto emit = [&](const std::string& chunk) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.push_back(chunk);
  };

  server.HandleLine("# a comment line", emit);
  server.HandleLine("", emit);
  server.HandleLine("open s1 k=3 threads=2", emit);
  server.HandleLine("domain s1 4", emit);
  server.HandleLine("rel s1 E/2 0 1 ; 1 2 ; 2 3 ; 3 0 ;", emit);
  server.HandleLine("eval 7 s1 (x1,x2) E(x1,x2)", emit);
  server.Drain();
  server.HandleLine("stats s1", emit);
  server.HandleLine("close s1", emit);
  server.HandleLine("bogus command", emit);
  server.HandleLine("quit", emit);
  EXPECT_TRUE(server.closed());

  std::string all;
  {
    std::lock_guard<std::mutex> lock(mu);
    for (const auto& chunk : chunks) all += chunk;
  }
  EXPECT_NE(all.find("ok open s1\n"), std::string::npos) << all;
  EXPECT_NE(all.find("ok domain s1 4\n"), std::string::npos) << all;
  EXPECT_NE(all.find("ok rel s1\n"), std::string::npos) << all;
  EXPECT_NE(all.find("ok eval 7\n"), std::string::npos) << all;
  EXPECT_NE(all.find("result 7 ok\n"), std::string::npos) << all;
  EXPECT_NE(all.find("4 tuple(s), arity 2"), std::string::npos) << all;
  EXPECT_NE(all.find("end 7\n"), std::string::npos) << all;
  EXPECT_NE(all.find("stats session=s1 queries=1 ok=1 failed=0"),
            std::string::npos)
      << all;
  EXPECT_NE(all.find("ok close s1\n"), std::string::npos) << all;
  EXPECT_NE(all.find("err bogus command"), std::string::npos) << all;
  EXPECT_NE(all.find("ok quit\n"), std::string::npos) << all;

  // After the close, the aggregate stats report no sessions and no bytes.
  std::vector<std::string> after;
  server.HandleLine("stats", [&](const std::string& chunk) {
    after.push_back(chunk);
  });
  ASSERT_EQ(after.size(), 1u);
  EXPECT_NE(after[0].find("stats sessions=0"), std::string::npos) << after[0];
  EXPECT_NE(after[0].find("reserved_bytes=0"), std::string::npos) << after[0];
}

// --- cross-query answer cache through the server ---------------------------

TEST(ServeCacheTest, WarmHitIsByteIdenticalAndCounted) {
  Server server;
  ASSERT_TRUE(server.Open("s", SessionOptions{}, CycleDb(6)).ok());

  const EvalOutcome cold = server.EvalSync("s", kTcQuery);
  ASSERT_TRUE(cold.status.ok()) << cold.status.ToString();
  EXPECT_EQ(cold.eval_stats.cache_hits, 0u);
  EXPECT_GT(cold.eval_stats.cache_misses, 0u);

  const EvalOutcome warm = server.EvalSync("s", kTcQuery);
  ASSERT_TRUE(warm.status.ok()) << warm.status.ToString();
  EXPECT_GT(warm.eval_stats.cache_hits, 0u);
  EXPECT_EQ(warm.payload, cold.payload);

  // Cache off reproduces the same bytes (the seed evaluation path).
  SessionOptions no_cache;
  no_cache.cross_query_cache = false;
  ASSERT_TRUE(server.Open("ref", no_cache, CycleDb(6)).ok());
  const EvalOutcome ref = server.EvalSync("ref", kTcQuery);
  ASSERT_TRUE(ref.status.ok());
  EXPECT_EQ(ref.eval_stats.cache_hits, 0u);
  EXPECT_EQ(ref.eval_stats.cache_misses, 0u);
  EXPECT_EQ(ref.payload, cold.payload);
}

TEST(ServeCacheTest, LoadInvalidatesByVersionWithoutFlushing) {
  Server server;
  std::vector<std::string> chunks;
  std::mutex mu;
  auto emit = [&](const std::string& chunk) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.push_back(chunk);
  };
  ASSERT_TRUE(server.Open("s", SessionOptions{}, CycleDb(6)).ok());
  const EvalOutcome before = server.EvalSync("s", kTcQuery);
  ASSERT_TRUE(before.status.ok());
  auto session = server.sessions().Get("s");
  ASSERT_TRUE(session.ok());
  const auto resident = (*session)->cache()->stats().entries;
  EXPECT_GT(resident, 0u);

  // Reload the database mid-session: a path instead of a cycle. Entries
  // stay resident (no flush) but every key carries a dead version.
  Database path(6);
  ASSERT_TRUE(path.AddRelation("E", PathGraph(6)).ok());
  const std::string file = ::testing::TempDir() + "/bvq_cache_load.db";
  {
    std::ofstream out(file);
    ASSERT_TRUE(out.good());
    out << path.ToString();
  }
  server.HandleLine("load s " + file, emit);
  {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_EQ(chunks.size(), 1u);
    EXPECT_EQ(chunks[0], "ok load s\n") << chunks[0];
  }
  EXPECT_EQ((*session)->cache()->stats().entries, resident);

  // Stale E-dependent keys never match the reloaded relation's version, so
  // the fixpoint recomputes (misses); only relation-free subtrees (the
  // x1 = x3 equality) may still hit — their answers depend on the domain
  // alone, which the load preserved.
  const EvalOutcome after = server.EvalSync("s", kTcQuery);
  ASSERT_TRUE(after.status.ok());
  EXPECT_GT(after.eval_stats.cache_misses, 0u);
  EXPECT_NE(after.payload, before.payload);

  // The served answer matches a direct evaluator run on the new database.
  auto query = ParseQuery(kTcQuery);
  ASSERT_TRUE(query.ok());
  BoundedEvaluator direct(path, 3);
  auto expected = direct.EvaluateQuery(*query);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(after.payload, FormatRelation(*expected, 20));
}

TEST(ServeCacheTest, ProtocolCacheCommandAndStatsCounters) {
  Server server;
  std::vector<std::string> chunks;
  std::mutex mu;
  auto emit = [&](const std::string& chunk) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.push_back(chunk);
  };
  server.HandleLine("open s k=3 cache=1 cache-mb=8", emit);
  server.HandleLine("domain s 6", emit);
  server.HandleLine("rel s E/2 0 1 ; 1 2 ; 2 3 ; 3 4 ; 4 5 ; 5 0 ;", emit);
  server.HandleLine("eval 1 s " + std::string(kTcQuery), emit);
  server.HandleLine("drain", emit);
  server.HandleLine("eval 2 s " + std::string(kTcQuery), emit);
  server.HandleLine("drain", emit);
  server.HandleLine("stats s", emit);
  server.HandleLine("cache s off", emit);
  server.HandleLine("cache s clear", emit);
  server.HandleLine("cache s on", emit);
  server.HandleLine("cache s sideways", emit);
  server.HandleLine("cache nowhere on", emit);
  server.HandleLine("cache", emit);

  std::string all;
  {
    std::lock_guard<std::mutex> lock(mu);
    for (const auto& chunk : chunks) all += chunk;
  }
  EXPECT_NE(all.find("ok open s\n"), std::string::npos) << all;
  EXPECT_NE(all.find("result 1 ok\n"), std::string::npos) << all;
  EXPECT_NE(all.find("result 2 ok\n"), std::string::npos) << all;
  // The per-session stats line reports the evaluator and cache counters:
  // the replayed query was served from the cross-query cache.
  EXPECT_NE(all.find(" memo_hits="), std::string::npos) << all;
  EXPECT_NE(all.find(" memo_misses="), std::string::npos) << all;
  EXPECT_NE(all.find(" cache=1 "), std::string::npos) << all;
  EXPECT_EQ(all.find(" cache_hits=0 "), std::string::npos) << all;
  EXPECT_NE(all.find(" cache_entries="), std::string::npos) << all;
  EXPECT_NE(all.find("ok cache s off\n"), std::string::npos) << all;
  EXPECT_NE(all.find("ok cache s clear\n"), std::string::npos) << all;
  EXPECT_NE(all.find("ok cache s on\n"), std::string::npos) << all;
  EXPECT_NE(all.find("err cache s: expected on|off|clear"), std::string::npos)
      << all;
  EXPECT_NE(all.find("err cache nowhere:"), std::string::npos) << all;
  EXPECT_NE(all.find("err cache: expected <session> on|off|clear"),
            std::string::npos)
      << all;

  // After `cache s clear` + `cache s on`, the cache is empty but live.
  auto session = server.sessions().Get("s");
  ASSERT_TRUE(session.ok());
  EXPECT_TRUE((*session)->cache_enabled());
  EXPECT_EQ((*session)->cache()->stats().entries, 0u);
}

TEST(ServeCacheTest, CacheOffSessionNeverTouchesCache) {
  Server server;
  SessionOptions options;
  options.cross_query_cache = false;
  ASSERT_TRUE(server.Open("s", options, CycleDb(6)).ok());
  const EvalOutcome a = server.EvalSync("s", kTcQuery);
  const EvalOutcome b = server.EvalSync("s", kTcQuery);
  ASSERT_TRUE(a.status.ok());
  ASSERT_TRUE(b.status.ok());
  EXPECT_EQ(a.payload, b.payload);
  auto session = server.sessions().Get("s");
  ASSERT_TRUE(session.ok());
  EXPECT_EQ((*session)->cache()->stats().entries, 0u);
  EXPECT_EQ((*session)->cache_hits.load(), 0u);
  EXPECT_EQ((*session)->cache_misses.load(), 0u);

  // Flipping the switch mid-session starts populating the same cache.
  (*session)->set_cache_enabled(true);
  const EvalOutcome c = server.EvalSync("s", kTcQuery);
  ASSERT_TRUE(c.status.ok());
  EXPECT_EQ(c.payload, a.payload);
  EXPECT_GT((*session)->cache()->stats().entries, 0u);
}

TEST(ServeProtocolTest, StrictNumericParsingRejectsGarbage) {
  Server server;
  std::vector<std::string> chunks;
  auto emit = [&](const std::string& chunk) { chunks.push_back(chunk); };
  server.HandleLine("open s1 k=abc", emit);
  server.HandleLine("open s2 k=", emit);
  server.HandleLine("open s3 bogus", emit);
  server.HandleLine("domain nowhere 4", emit);
  server.HandleLine("eval xyz s1 (x1) x1 = x1", emit);
  server.HandleLine("cancel 1x", emit);
  for (const auto& chunk : chunks) {
    EXPECT_EQ(chunk.rfind("err ", 0), 0u) << chunk;
  }
  EXPECT_EQ(chunks.size(), 6u);
  EXPECT_EQ(server.sessions().size(), 0u);
}

}  // namespace
}  // namespace bvq::serve
