// The serving layer: FIFO admission control (budget, cap, queue, cancel),
// session lifecycle and governor pooling, and the Server end-to-end — the
// load-bearing properties being that a served answer is byte-identical to a
// direct evaluator run, that an over-budget admission is rejected while
// running queries finish unaffected, and that a remote cancel lands
// mid-fixpoint as a sticky Cancelled with partial resource stats.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/resource.h"
#include "common/status.h"
#include "common/strings.h"
#include "db/database.h"
#include "db/generators.h"
#include "eval/bounded_eval.h"
#include "logic/parser.h"
#include "serve/admission.h"
#include "serve/server.h"
#include "serve/session.h"
#include "serve/shard.h"

#include <unistd.h>

namespace bvq::serve {
namespace {

using std::chrono::milliseconds;

constexpr char kTcQuery[] =
    "(x1,x2) [lfp T(x1,x2) . E(x1,x2) | exists x3 . (E(x1,x3) & "
    "exists x1 . (x1 = x3 & T(x1,x2)))](x1,x2)";

// PFP binary counter over a strict order: the orbit has length 2^n, so with
// n = 18 the fixpoint runs for ~260k stages — plenty of time to cancel it.
constexpr char kCounterQuery[] =
    "(x1) [pfp X(x1) . !(X(x1) <-> forall x2 . (Lt(x2,x1) -> X(x2)))](x1)";

Database CycleDb(std::size_t n) {
  Database db(n);
  EXPECT_TRUE(db.AddRelation("E", CycleGraph(n)).ok());
  return db;
}

Database CounterDb(std::size_t n) {
  Database db(n);
  RelationBuilder lt(2);
  for (Value i = 0; i < static_cast<Value>(n); ++i) {
    for (Value j = i + 1; j < static_cast<Value>(n); ++j) lt.Add(Tuple{i, j});
  }
  EXPECT_TRUE(db.AddRelation("Lt", lt.Build()).ok());
  return db;
}

// Spins until `pred` holds or ~5 s pass; returns whether it held.
template <typename Pred>
bool WaitFor(Pred pred) {
  for (int i = 0; i < 5000; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(milliseconds(1));
  }
  return pred();
}

// --- AdmissionController ---------------------------------------------------------

TEST(AdmissionTest, UnlimitedControllerOnlyCounts) {
  AdmissionController ctl;
  auto t1 = ctl.Admit(1 << 20);
  auto t2 = ctl.Admit(1 << 20);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  const AdmissionStats s = ctl.stats();
  EXPECT_EQ(s.active_queries, 2u);
  EXPECT_EQ(s.reserved_bytes, std::size_t{2} << 20);
  EXPECT_EQ(s.admitted_total, 2u);
  EXPECT_EQ(s.rejected_total, 0u);
  t1->Release();
  t2->Release();
  EXPECT_EQ(ctl.stats().reserved_bytes, 0u);
  EXPECT_EQ(ctl.stats().active_queries, 0u);
}

TEST(AdmissionTest, SpentAggregateBudgetRejectsWhenQueueingIsOff) {
  AdmissionOptions opts;
  opts.aggregate_mem_budget_bytes = 100;
  AdmissionController ctl(opts);

  auto held = ctl.Admit(60);
  ASSERT_TRUE(held.ok());
  auto rejected = ctl.Admit(60);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  // The running admission is unaffected by the rejection.
  EXPECT_TRUE(held->valid());
  EXPECT_EQ(ctl.stats().active_queries, 1u);
  EXPECT_EQ(ctl.stats().reserved_bytes, 60u);
  EXPECT_EQ(ctl.stats().rejected_total, 1u);

  held->Release();
  auto now_fits = ctl.Admit(60);
  EXPECT_TRUE(now_fits.ok());
}

TEST(AdmissionTest, OversizeRequestRejectedImmediatelyDespiteQueue) {
  AdmissionOptions opts;
  opts.aggregate_mem_budget_bytes = 100;
  opts.queue_wait_ms = 10'000;
  AdmissionController ctl(opts);
  const auto start = std::chrono::steady_clock::now();
  auto rejected = ctl.Admit(200);  // can never fit: larger than the whole pot
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_LT(elapsed, milliseconds(1000));  // no pointless queue wait
  EXPECT_EQ(ctl.stats().queued_total, 0u);
}

TEST(AdmissionTest, QueuedRequestAdmittedWhenBudgetIsReleased) {
  AdmissionOptions opts;
  opts.aggregate_mem_budget_bytes = 100;
  opts.queue_wait_ms = 10'000;
  AdmissionController ctl(opts);

  auto held = ctl.Admit(80);
  ASSERT_TRUE(held.ok());
  auto waiting = std::async(std::launch::async, [&] { return ctl.Admit(80); });
  ASSERT_TRUE(WaitFor([&] { return ctl.stats().queue_length == 1; }));

  held->Release();
  auto admitted = waiting.get();
  ASSERT_TRUE(admitted.ok()) << admitted.status().ToString();
  EXPECT_GT(admitted->queue_wait_ms(), 0.0);
  EXPECT_EQ(ctl.stats().queued_total, 1u);
  EXPECT_EQ(ctl.stats().reserved_bytes, 80u);
}

TEST(AdmissionTest, ConcurrencyCapQueuesThenAdmits) {
  AdmissionOptions opts;
  opts.max_concurrent_queries = 1;
  opts.queue_wait_ms = 10'000;
  AdmissionController ctl(opts);

  auto held = ctl.Admit(0);
  ASSERT_TRUE(held.ok());
  auto waiting = std::async(std::launch::async, [&] { return ctl.Admit(0); });
  ASSERT_TRUE(WaitFor([&] { return ctl.stats().queue_length == 1; }));
  held->Release();
  EXPECT_TRUE(waiting.get().ok());
}

TEST(AdmissionTest, QueueTimeoutRejects) {
  AdmissionOptions opts;
  opts.max_concurrent_queries = 1;
  opts.queue_wait_ms = 50;
  AdmissionController ctl(opts);
  auto held = ctl.Admit(0);
  ASSERT_TRUE(held.ok());
  auto timed_out = ctl.Admit(0);
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), StatusCode::kResourceExhausted);
}

TEST(AdmissionTest, QueueLengthCapRejectsExtraWaiters) {
  AdmissionOptions opts;
  opts.max_concurrent_queries = 1;
  opts.queue_wait_ms = 10'000;
  opts.max_queue_length = 1;
  AdmissionController ctl(opts);
  auto held = ctl.Admit(0);
  ASSERT_TRUE(held.ok());
  auto waiting = std::async(std::launch::async, [&] { return ctl.Admit(0); });
  ASSERT_TRUE(WaitFor([&] { return ctl.stats().queue_length == 1; }));
  auto overflow = ctl.Admit(0);  // queue is full
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kResourceExhausted);
  held->Release();
  EXPECT_TRUE(waiting.get().ok());
}

TEST(AdmissionTest, CancelFlagAbandonsQueuedWait) {
  AdmissionOptions opts;
  opts.max_concurrent_queries = 1;
  opts.queue_wait_ms = 10'000;
  AdmissionController ctl(opts);
  auto held = ctl.Admit(0);
  ASSERT_TRUE(held.ok());

  std::atomic<bool> cancel{false};
  auto waiting = std::async(std::launch::async,
                            [&] { return ctl.Admit(0, &cancel); });
  ASSERT_TRUE(WaitFor([&] { return ctl.stats().queue_length == 1; }));
  cancel.store(true);
  auto cancelled = waiting.get();
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(ctl.stats().cancelled_total, 1u);
  // The holder is untouched and the queue is empty again.
  EXPECT_TRUE(held->valid());
  EXPECT_EQ(ctl.stats().queue_length, 0u);
}

// --- Session / SessionManager ----------------------------------------------------

TEST(SessionManagerTest, OpenGetCloseLifecycle) {
  SessionManager mgr;
  auto opened = mgr.Open("a", Database(4), SessionOptions{});
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(mgr.size(), 1u);

  auto dup = mgr.Open("a", Database(4), SessionOptions{});
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kInvalidArgument);

  EXPECT_TRUE(mgr.Get("a").ok());
  EXPECT_EQ(mgr.Get("b").status().code(), StatusCode::kNotFound);

  EXPECT_TRUE(mgr.Close("a").ok());
  EXPECT_EQ(mgr.Get("a").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(mgr.Close("a").code(), StatusCode::kNotFound);
  EXPECT_EQ(mgr.size(), 0u);
}

TEST(SessionTest, GovernorPoolReusesTokensAndLinksParent) {
  Session session("s", Database(4), SessionOptions{});
  auto g1 = session.AcquireGovernor();
  ASSERT_NE(g1, nullptr);
  EXPECT_EQ(g1->parent(), &session.governor());
  session.ReleaseGovernor(std::move(g1));

  auto g2 = session.AcquireGovernor();
  const Session::PoolStats stats = session.pool_stats();
  EXPECT_EQ(stats.created, 1u);
  EXPECT_EQ(stats.reused, 1u);
  EXPECT_EQ(stats.free, 0u);
  // Reuse re-arms the token: a trip from a previous query must not leak in.
  g2->Cancel("old query");
  session.ReleaseGovernor(std::move(g2));
  auto g3 = session.AcquireGovernor();
  EXPECT_TRUE(g3->Check().ok());
}

TEST(SessionTest, AdmissionReserveDerivation) {
  SessionOptions so;
  EXPECT_EQ(Session("a", Database(0), so).admission_reserve_bytes(),
            kDefaultAdmissionReserveBytes);

  so.session_limits.mem_budget_bytes = std::size_t{1} << 20;
  EXPECT_EQ(Session("b", Database(0), so).admission_reserve_bytes(),
            std::size_t{1} << 20);

  so.query_limits.mem_budget_bytes = std::size_t{2} << 20;
  EXPECT_EQ(Session("c", Database(0), so).admission_reserve_bytes(),
            std::size_t{2} << 20);

  so.admission_reserve_bytes = 12345;
  EXPECT_EQ(Session("d", Database(0), so).admission_reserve_bytes(), 12345u);
}

// --- Server end-to-end -----------------------------------------------------------

TEST(ServeTest, ServedResultIsByteIdenticalToDirectEvaluatorRun) {
  Database db = CycleDb(12);
  auto query = ParseQuery(kTcQuery);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  BoundedEvaluator direct(db, 3);
  auto expected = direct.EvaluateQuery(*query);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  const std::string want = FormatRelation(*expected, 20);

  Server server;
  ASSERT_TRUE(server.Open("s", SessionOptions{}, CycleDb(12)).ok());
  const EvalOutcome out = server.EvalSync("s", kTcQuery);
  ASSERT_TRUE(out.status.ok()) << out.status.ToString();
  EXPECT_EQ(out.payload, want);
  EXPECT_GT(out.eval_ms, 0.0);
}

TEST(ServeTest, EmptyDomainSessionEvaluatesToEmptyAnswer) {
  // An empty domain is legal: every query answer over it is the empty
  // relation (there is nothing to bind), never an error.
  Server server;
  ASSERT_TRUE(server.Open("empty", SessionOptions{}, Database(0)).ok());
  const EvalOutcome out = server.EvalSync("empty", "(x1) x1 = x1");
  ASSERT_TRUE(out.status.ok()) << out.status.ToString();
  EXPECT_NE(out.payload.find("0 tuple(s)"), std::string::npos);
}

TEST(ServeTest, UnknownSessionFailsWithNotFound) {
  Server server;
  const EvalOutcome out = server.EvalSync("ghost", "(x1) x1 = x1");
  ASSERT_FALSE(out.status.ok());
  EXPECT_EQ(out.status.code(), StatusCode::kNotFound);
}

TEST(ServeTest, OverBudgetAdmissionRejectedWhileRunningQueryCompletes) {
  ServeOptions so;
  so.admission.aggregate_mem_budget_bytes = std::size_t{64} << 20;
  Server server(so);

  SessionOptions big;
  big.admission_reserve_bytes = std::size_t{48} << 20;
  ASSERT_TRUE(server.Open("big", big, CycleDb(8)).ok());
  SessionOptions small;
  small.admission_reserve_bytes = std::size_t{48} << 20;
  ASSERT_TRUE(server.Open("small", small, CycleDb(4)).ok());

  // Pin the big session's query between admission (reserve held) and
  // evaluation by holding its db lock exclusively: the rejection below is
  // then guaranteed to land while the query is admitted and running.
  auto session = server.sessions().Get("big");
  ASSERT_TRUE(session.ok());
  std::promise<EvalOutcome> done;
  auto done_future = done.get_future();
  {
    std::unique_lock<std::shared_mutex> pin((*session)->db_mutex());
    auto id = server.EvalAsync("big", kTcQuery, [&](const EvalOutcome& o) {
      done.set_value(o);
    });
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ASSERT_TRUE(WaitFor(
        [&] { return server.admission().stats().active_queries >= 1; }));

    const EvalOutcome rejected = server.EvalSync("small", kTcQuery);
    ASSERT_FALSE(rejected.status.ok());
    EXPECT_EQ(rejected.status.code(), StatusCode::kResourceExhausted);
  }

  // With the lock released the admitted query runs to a clean completion,
  // unaffected by the rejection next door.
  const EvalOutcome out = done_future.get();
  ASSERT_TRUE(out.status.ok()) << out.status.ToString();
  EXPECT_FALSE(out.payload.empty());
  server.Drain();
  EXPECT_EQ(server.admission().stats().reserved_bytes, 0u);
  EXPECT_EQ(server.admission().stats().rejected_total, 1u);
}

TEST(ServeTest, RemoteCancelMidFixpointReturnsCancelledWithPartialStats) {
  Server server;
  SessionOptions so;
  so.num_vars = 2;
  ASSERT_TRUE(server.Open("long", so, CounterDb(18)).ok());

  std::promise<EvalOutcome> done;
  auto done_future = done.get_future();
  auto id = server.EvalAsync("long", kCounterQuery, [&](const EvalOutcome& o) {
    done.set_value(o);
  });
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  // Let the fixpoint actually start churning before pulling the plug.
  ASSERT_TRUE(WaitFor(
      [&] { return server.admission().stats().active_queries >= 1; }));
  std::this_thread::sleep_for(milliseconds(100));
  ASSERT_TRUE(server.Cancel(*id, "test disconnect").ok());

  const EvalOutcome out = done_future.get();
  ASSERT_FALSE(out.status.ok());
  EXPECT_EQ(out.status.code(), StatusCode::kCancelled);
  // Partial stats: the evaluation did run and was stopped mid-flight, and
  // the composite token unwound cleanly.
  EXPECT_TRUE(out.resource.stopped);
  EXPECT_GT(out.resource.checks, 0u);
  EXPECT_EQ(out.resource.mem_current_bytes, 0u);

  // Once complete the id is gone: a second cancel is NotFound.
  server.Drain();
  EXPECT_EQ(server.Cancel(*id).code(), StatusCode::kNotFound);
  // The session-level account drained too.
  auto session = server.sessions().Get("long");
  ASSERT_TRUE(session.ok());
  EXPECT_EQ((*session)->governor().stats().mem_current_bytes, 0u);
  EXPECT_EQ((*session)->queries_failed.load(), 1u);
}

TEST(ServeTest, SessionDeadlineSurvivesZeroQueryOverlay) {
  // Serving-layer regression for composite tokens: per-query limits of all
  // zeros must not erase the session deadline (see ResourceGovernor).
  Server server;
  SessionOptions so;
  so.num_vars = 2;
  so.session_limits.deadline_ms = 1;
  so.query_limits = ResourceGovernor::Limits{};  // explicit 0-overlay
  ASSERT_TRUE(server.Open("dl", so, CounterDb(18)).ok());
  std::this_thread::sleep_for(milliseconds(10));

  const EvalOutcome out = server.EvalSync("dl", kCounterQuery);
  ASSERT_FALSE(out.status.ok());
  EXPECT_EQ(out.status.code(), StatusCode::kDeadlineExceeded);
}

TEST(ServeTest, CloseCancelsInFlightQueriesOnDetachedSession) {
  Server server;
  ASSERT_TRUE(server.Open("s", SessionOptions{}, CycleDb(8)).ok());
  auto session = server.sessions().Get("s");
  ASSERT_TRUE(session.ok());

  std::promise<EvalOutcome> done;
  auto done_future = done.get_future();
  {
    std::unique_lock<std::shared_mutex> pin((*session)->db_mutex());
    auto id = server.EvalAsync("s", kTcQuery, [&](const EvalOutcome& o) {
      done.set_value(o);
    });
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(WaitFor(
        [&] { return server.admission().stats().active_queries >= 1; }));
    // Close while the query is pinned: the name goes away immediately, the
    // query finishes as Cancelled on the detached session object.
    ASSERT_TRUE(server.Close("s").ok());
    EXPECT_EQ(server.sessions().Get("s").status().code(),
              StatusCode::kNotFound);
  }
  const EvalOutcome out = done_future.get();
  ASSERT_FALSE(out.status.ok());
  EXPECT_EQ(out.status.code(), StatusCode::kCancelled);
  server.Drain();
  EXPECT_EQ(server.admission().stats().reserved_bytes, 0u);
}

TEST(ServeTest, GovernorPoolRecyclesAcrossSequentialQueries) {
  Server server;
  ASSERT_TRUE(server.Open("s", SessionOptions{}, CycleDb(6)).ok());
  for (int i = 0; i < 3; ++i) {
    const EvalOutcome out = server.EvalSync("s", "(x1,x2) E(x1,x2)");
    ASSERT_TRUE(out.status.ok()) << out.status.ToString();
  }
  auto session = server.sessions().Get("s");
  ASSERT_TRUE(session.ok());
  const Session::PoolStats stats = (*session)->pool_stats();
  EXPECT_EQ(stats.created, 1u);
  EXPECT_EQ(stats.reused, 2u);
  EXPECT_EQ((*session)->queries_ok.load(), 3u);
}

TEST(ServeTest, PerQueryBudgetTripLeavesSessionAccountClean) {
  // Regression: a per-query budget trip used to skip the forward of the
  // tripping charge into the session governor while the unwind still
  // released it there, underflowing the session's live-byte account to
  // ~2^64 and permanently failing every later query of that session.
  Server server;
  SessionOptions so;
  so.session_limits.mem_budget_bytes = std::size_t{256} << 20;
  so.query_limits.mem_budget_bytes = 16;  // far below one n^3 cube
  ASSERT_TRUE(server.Open("tight", so, CycleDb(12)).ok());

  const EvalOutcome out = server.EvalSync("tight", kTcQuery);
  ASSERT_FALSE(out.status.ok());
  EXPECT_EQ(out.status.code(), StatusCode::kResourceExhausted);

  auto session = server.sessions().Get("tight");
  ASSERT_TRUE(session.ok());
  // Exactly zero — not wrapped — and the session token itself never tripped.
  EXPECT_EQ((*session)->governor().stats().mem_current_bytes, 0u);
  EXPECT_FALSE((*session)->governor().stopped());
  EXPECT_TRUE((*session)->governor().Check().ok());
}

TEST(ServeTest, StaleCancelHandleCannotCancelReusedPooledToken) {
  // Regression: completion used to pool the per-query governor while the
  // CancelState's weak_ptr still pointed at it, so a CancelHandle held past
  // completion could trip the token after it had been Reset and re-acquired
  // by a later query, cancelling that unrelated query spuriously.
  Server server;
  ASSERT_TRUE(server.Open("s", SessionOptions{}, CycleDb(6)).ok());
  auto session = server.sessions().Get("s");
  ASSERT_TRUE(session.ok());

  CancelHandle stale;
  std::promise<EvalOutcome> done1;
  auto first = done1.get_future();
  {
    std::unique_lock<std::shared_mutex> pin((*session)->db_mutex());
    auto id = server.EvalAsync("s", "(x1,x2) E(x1,x2)",
                               [&](const EvalOutcome& o) {
                                 done1.set_value(o);
                               });
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    // Wait for the query to acquire + bind its governor, then grab the
    // cancellation capability and hold it past completion.
    ASSERT_TRUE(WaitFor(
        [&] { return (*session)->pool_stats().created >= 1; }));
    auto handle = server.Handle(*id);
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    stale = *handle;
  }
  ASSERT_TRUE(first.get().status.ok());
  server.Drain();  // the token is back in the pool now

  // Run a second query on the same session: it reuses the pooled token.
  // Fire the stale handle while that query is pinned mid-flight — it must
  // be a valid-but-harmless no-op, not a cancellation of query 2.
  std::promise<EvalOutcome> done2;
  auto second = done2.get_future();
  {
    std::unique_lock<std::shared_mutex> pin((*session)->db_mutex());
    auto id = server.EvalAsync("s", "(x1,x2) E(x1,x2)",
                               [&](const EvalOutcome& o) {
                                 done2.set_value(o);
                               });
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(WaitFor(
        [&] { return (*session)->pool_stats().reused >= 1; }));
    EXPECT_TRUE(stale.Cancel("far too late"));
  }
  const EvalOutcome out = second.get();
  ASSERT_TRUE(out.status.ok()) << out.status.ToString();
  EXPECT_EQ((*session)->queries_ok.load(), 2u);
}

// --- protocol surface ------------------------------------------------------------

TEST(ServeProtocolTest, FullSessionConversation) {
  Server server;
  std::mutex mu;
  std::vector<std::string> chunks;
  auto emit = [&](const std::string& chunk) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.push_back(chunk);
  };

  server.HandleLine("# a comment line", emit);
  server.HandleLine("", emit);
  server.HandleLine("open s1 k=3 threads=2", emit);
  server.HandleLine("domain s1 4", emit);
  server.HandleLine("rel s1 E/2 0 1 ; 1 2 ; 2 3 ; 3 0 ;", emit);
  server.HandleLine("eval 7 s1 (x1,x2) E(x1,x2)", emit);
  server.Drain();
  server.HandleLine("stats s1", emit);
  server.HandleLine("close s1", emit);
  server.HandleLine("bogus command", emit);
  server.HandleLine("quit", emit);
  EXPECT_TRUE(server.closed());

  std::string all;
  {
    std::lock_guard<std::mutex> lock(mu);
    for (const auto& chunk : chunks) all += chunk;
  }
  EXPECT_NE(all.find("ok open s1\n"), std::string::npos) << all;
  EXPECT_NE(all.find("ok domain s1 4\n"), std::string::npos) << all;
  EXPECT_NE(all.find("ok rel s1\n"), std::string::npos) << all;
  EXPECT_NE(all.find("ok eval 7\n"), std::string::npos) << all;
  EXPECT_NE(all.find("result 7 ok\n"), std::string::npos) << all;
  EXPECT_NE(all.find("4 tuple(s), arity 2"), std::string::npos) << all;
  EXPECT_NE(all.find("end 7\n"), std::string::npos) << all;
  EXPECT_NE(all.find("stats session=s1 queries=1 ok=1 failed=0"),
            std::string::npos)
      << all;
  EXPECT_NE(all.find("ok close s1\n"), std::string::npos) << all;
  EXPECT_NE(all.find("err unknown command \"bogus\"; try help"),
            std::string::npos)
      << all;
  EXPECT_NE(all.find("ok quit\n"), std::string::npos) << all;

  // After the close, the aggregate stats report no sessions and no bytes.
  std::vector<std::string> after;
  server.HandleLine("stats", [&](const std::string& chunk) {
    after.push_back(chunk);
  });
  ASSERT_EQ(after.size(), 1u);
  EXPECT_NE(after[0].find("stats sessions=0"), std::string::npos) << after[0];
  EXPECT_NE(after[0].find("reserved_bytes=0"), std::string::npos) << after[0];
}

// --- cross-query answer cache through the server ---------------------------

TEST(ServeCacheTest, WarmHitIsByteIdenticalAndCounted) {
  Server server;
  ASSERT_TRUE(server.Open("s", SessionOptions{}, CycleDb(6)).ok());

  const EvalOutcome cold = server.EvalSync("s", kTcQuery);
  ASSERT_TRUE(cold.status.ok()) << cold.status.ToString();
  EXPECT_EQ(cold.eval_stats.cache_hits, 0u);
  EXPECT_GT(cold.eval_stats.cache_misses, 0u);

  const EvalOutcome warm = server.EvalSync("s", kTcQuery);
  ASSERT_TRUE(warm.status.ok()) << warm.status.ToString();
  EXPECT_GT(warm.eval_stats.cache_hits, 0u);
  EXPECT_EQ(warm.payload, cold.payload);

  // Cache off reproduces the same bytes (the seed evaluation path).
  SessionOptions no_cache;
  no_cache.cross_query_cache = false;
  ASSERT_TRUE(server.Open("ref", no_cache, CycleDb(6)).ok());
  const EvalOutcome ref = server.EvalSync("ref", kTcQuery);
  ASSERT_TRUE(ref.status.ok());
  EXPECT_EQ(ref.eval_stats.cache_hits, 0u);
  EXPECT_EQ(ref.eval_stats.cache_misses, 0u);
  EXPECT_EQ(ref.payload, cold.payload);
}

TEST(ServeCacheTest, LoadInvalidatesByVersionWithoutFlushing) {
  Server server;
  std::vector<std::string> chunks;
  std::mutex mu;
  auto emit = [&](const std::string& chunk) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.push_back(chunk);
  };
  ASSERT_TRUE(server.Open("s", SessionOptions{}, CycleDb(6)).ok());
  const EvalOutcome before = server.EvalSync("s", kTcQuery);
  ASSERT_TRUE(before.status.ok());
  auto session = server.sessions().Get("s");
  ASSERT_TRUE(session.ok());
  const auto resident = (*session)->cache()->stats().entries;
  EXPECT_GT(resident, 0u);

  // Reload the database mid-session: a path instead of a cycle. Entries
  // stay resident (no flush) but every key carries a dead version.
  Database path(6);
  ASSERT_TRUE(path.AddRelation("E", PathGraph(6)).ok());
  const std::string file = ::testing::TempDir() + "/bvq_cache_load.db";
  {
    std::ofstream out(file);
    ASSERT_TRUE(out.good());
    out << path.ToString();
  }
  server.HandleLine("load s " + file, emit);
  {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_EQ(chunks.size(), 1u);
    EXPECT_EQ(chunks[0], "ok load s\n") << chunks[0];
  }
  EXPECT_EQ((*session)->cache()->stats().entries, resident);

  // Stale E-dependent keys never match the reloaded relation's version, so
  // the fixpoint recomputes (misses); only relation-free subtrees (the
  // x1 = x3 equality) may still hit — their answers depend on the domain
  // alone, which the load preserved.
  const EvalOutcome after = server.EvalSync("s", kTcQuery);
  ASSERT_TRUE(after.status.ok());
  EXPECT_GT(after.eval_stats.cache_misses, 0u);
  EXPECT_NE(after.payload, before.payload);

  // The served answer matches a direct evaluator run on the new database.
  auto query = ParseQuery(kTcQuery);
  ASSERT_TRUE(query.ok());
  BoundedEvaluator direct(path, 3);
  auto expected = direct.EvaluateQuery(*query);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(after.payload, FormatRelation(*expected, 20));
}

TEST(ServeCacheTest, ProtocolCacheCommandAndStatsCounters) {
  Server server;
  std::vector<std::string> chunks;
  std::mutex mu;
  auto emit = [&](const std::string& chunk) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.push_back(chunk);
  };
  server.HandleLine("open s k=3 cache=1 cache-mb=8", emit);
  server.HandleLine("domain s 6", emit);
  server.HandleLine("rel s E/2 0 1 ; 1 2 ; 2 3 ; 3 4 ; 4 5 ; 5 0 ;", emit);
  server.HandleLine("eval 1 s " + std::string(kTcQuery), emit);
  server.HandleLine("drain", emit);
  server.HandleLine("eval 2 s " + std::string(kTcQuery), emit);
  server.HandleLine("drain", emit);
  server.HandleLine("stats s", emit);
  server.HandleLine("cache s off", emit);
  server.HandleLine("cache s clear", emit);
  server.HandleLine("cache s on", emit);
  server.HandleLine("cache s sideways", emit);
  server.HandleLine("cache nowhere on", emit);
  server.HandleLine("cache", emit);

  std::string all;
  {
    std::lock_guard<std::mutex> lock(mu);
    for (const auto& chunk : chunks) all += chunk;
  }
  EXPECT_NE(all.find("ok open s\n"), std::string::npos) << all;
  EXPECT_NE(all.find("result 1 ok\n"), std::string::npos) << all;
  EXPECT_NE(all.find("result 2 ok\n"), std::string::npos) << all;
  // The per-session stats line reports the evaluator and cache counters:
  // the replayed query was served from the cross-query cache.
  EXPECT_NE(all.find(" memo_hits="), std::string::npos) << all;
  EXPECT_NE(all.find(" memo_misses="), std::string::npos) << all;
  EXPECT_NE(all.find(" cache=1 "), std::string::npos) << all;
  EXPECT_EQ(all.find(" cache_hits=0 "), std::string::npos) << all;
  EXPECT_NE(all.find(" cache_entries="), std::string::npos) << all;
  EXPECT_NE(all.find("ok cache s off\n"), std::string::npos) << all;
  EXPECT_NE(all.find("ok cache s clear\n"), std::string::npos) << all;
  EXPECT_NE(all.find("ok cache s on\n"), std::string::npos) << all;
  EXPECT_NE(all.find("err cache s: expected on|off|clear"), std::string::npos)
      << all;
  EXPECT_NE(all.find("err cache nowhere:"), std::string::npos) << all;
  EXPECT_NE(all.find("err cache: expected <session> on|off|clear"),
            std::string::npos)
      << all;

  // After `cache s clear` + `cache s on`, the cache is empty but live.
  auto session = server.sessions().Get("s");
  ASSERT_TRUE(session.ok());
  EXPECT_TRUE((*session)->cache_enabled());
  EXPECT_EQ((*session)->cache()->stats().entries, 0u);
}

TEST(ServeCacheTest, CacheOffSessionNeverTouchesCache) {
  Server server;
  SessionOptions options;
  options.cross_query_cache = false;
  ASSERT_TRUE(server.Open("s", options, CycleDb(6)).ok());
  const EvalOutcome a = server.EvalSync("s", kTcQuery);
  const EvalOutcome b = server.EvalSync("s", kTcQuery);
  ASSERT_TRUE(a.status.ok());
  ASSERT_TRUE(b.status.ok());
  EXPECT_EQ(a.payload, b.payload);
  auto session = server.sessions().Get("s");
  ASSERT_TRUE(session.ok());
  EXPECT_EQ((*session)->cache()->stats().entries, 0u);
  EXPECT_EQ((*session)->cache_hits.load(), 0u);
  EXPECT_EQ((*session)->cache_misses.load(), 0u);

  // Flipping the switch mid-session starts populating the same cache.
  (*session)->set_cache_enabled(true);
  const EvalOutcome c = server.EvalSync("s", kTcQuery);
  ASSERT_TRUE(c.status.ok());
  EXPECT_EQ(c.payload, a.payload);
  EXPECT_GT((*session)->cache()->stats().entries, 0u);
}

TEST(ServeProtocolTest, StrictNumericParsingRejectsGarbage) {
  Server server;
  std::vector<std::string> chunks;
  auto emit = [&](const std::string& chunk) { chunks.push_back(chunk); };
  server.HandleLine("open s1 k=abc", emit);
  server.HandleLine("open s2 k=", emit);
  server.HandleLine("open s3 bogus", emit);
  server.HandleLine("domain nowhere 4", emit);
  server.HandleLine("eval xyz s1 (x1) x1 = x1", emit);
  server.HandleLine("cancel 1x", emit);
  for (const auto& chunk : chunks) {
    EXPECT_EQ(chunk.rfind("err ", 0), 0u) << chunk;
  }
  EXPECT_EQ(chunks.size(), 6u);
  EXPECT_EQ(server.sessions().size(), 0u);
}

// --- sharded router --------------------------------------------------------------

// Builds a "rel <session> E/2 .." request line for an n-cycle.
std::string CycleRelLine(const std::string& session, std::size_t n) {
  std::string line = StrCat("rel ", session, " E/2");
  for (std::size_t i = 0; i < n; ++i) {
    line += StrCat(" ", i, " ", (i + 1) % n, " ;");
  }
  return line;
}

// Builds a "rel <session> Lt/2 .." strict-order line (the counter workload).
std::string OrderRelLine(const std::string& session, std::size_t n) {
  std::string line = StrCat("rel ", session, " Lt/2");
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) line += StrCat(" ", i, " ", j, " ;");
  }
  return line;
}

// Returns a session name hashing onto `shard` under `num_shards`.
std::string NameOnShard(std::size_t shard, std::size_t num_shards) {
  for (int i = 0; i < 1024; ++i) {
    std::string name = StrCat("s", i);
    if (ShardForSession(name, num_shards) == shard) return name;
  }
  ADD_FAILURE() << "no session name found for shard " << shard;
  return "s0";
}

// A front-end client collecting everything the router emits to it.
struct TestClient {
  explicit TestClient(ShardRouter& router)
      : client(router.NewClient([this](const std::string& chunk) {
          std::lock_guard<std::mutex> lock(mutex);
          chunks.push_back(chunk);
        })) {}

  std::string All() {
    std::lock_guard<std::mutex> lock(mutex);
    std::string all;
    for (const auto& chunk : chunks) all += chunk;
    return all;
  }
  bool Contains(const std::string& needle) {
    return All().find(needle) != std::string::npos;
  }
  // The result/end block for query id `id` ("" until it arrives); blocks are
  // emitted as one chunk, so this is exact.
  std::string Block(std::size_t id) {
    std::lock_guard<std::mutex> lock(mutex);
    const std::string prefix = StrCat("result ", id, " ");
    for (const auto& chunk : chunks) {
      if (chunk.rfind(prefix, 0) == 0) return chunk;
    }
    return "";
  }

  std::mutex mutex;
  std::vector<std::string> chunks;
  std::shared_ptr<ShardRouter::Client> client;
};

// N in-process workers — a real Server each, served by ServeWorker over
// pipes — attached to a router. Exactly the process topology of
// `bvqserve --shards=N` minus fork/exec (which the bvqserve_shard_demo
// ctest and the check.sh shard smoke cover).
class RouterHarness {
 public:
  explicit RouterHarness(std::size_t n) {
    ShardRouter::Options options;
    options.num_shards = n;
    router_ = std::make_unique<ShardRouter>(std::move(options));
    for (std::size_t i = 0; i < n; ++i) {
      servers_.push_back(std::make_unique<Server>());
      int req[2], can[2], resp[2];
      EXPECT_EQ(::pipe(req), 0);
      EXPECT_EQ(::pipe(can), 0);
      EXPECT_EQ(::pipe(resp), 0);
      Server* server = servers_.back().get();
      worker_threads_.emplace_back(
          [server, in = req[0], cancel = can[0], out = resp[1]] {
            ServeWorker(*server, in, cancel, out);
          });
      EXPECT_TRUE(router_->AttachWorker(i, req[1], can[1], resp[0]).ok());
    }
  }

  ~RouterHarness() {
    router_->Shutdown();
    for (auto& t : worker_threads_) {
      if (t.joinable()) t.join();
    }
  }

  ShardRouter& router() { return *router_; }

 private:
  std::unique_ptr<ShardRouter> router_;
  std::vector<std::unique_ptr<Server>> servers_;
  std::vector<std::thread> worker_threads_;
};

TEST(ShardRouterTest, SessionHashingIsStableAndInRange) {
  for (int i = 0; i < 256; ++i) {
    const std::string name = StrCat("session-", i);
    const std::size_t shard = ShardForSession(name, 4);
    EXPECT_LT(shard, 4u);
    // Same name, same placement — on every lookup (the property a restarted
    // router relies on; the hash has no per-process state to vary).
    EXPECT_EQ(ShardForSession(name, 4), shard);
    EXPECT_EQ(ShardForSession(name, 1), 0u);
  }
  // The FNV placement actually spreads: 256 distinct names cannot all pile
  // onto one of 4 shards.
  std::set<std::size_t> used;
  for (int i = 0; i < 256; ++i) {
    used.insert(ShardForSession(StrCat("session-", i), 4));
  }
  EXPECT_EQ(used.size(), 4u);
}

TEST(ShardRouterTest, ShardShareSplitsBudgetsWithoutCreatingUnlimited) {
  // 0 means "unlimited" in AdmissionOptions and must stay 0.
  EXPECT_EQ(ShardShare(0, 0, 4), 0u);
  EXPECT_EQ(ShardShare(0, 3, 4), 0u);
  // A finite total splits exactly when it divides the fleet.
  std::size_t sum = 0;
  for (std::size_t s = 0; s < 4; ++s) sum += ShardShare(256, s, 4);
  EXPECT_EQ(sum, 256u);
  // Remainders go to the low shards, one unit each.
  EXPECT_EQ(ShardShare(10, 0, 4), 3u);
  EXPECT_EQ(ShardShare(10, 1, 4), 3u);
  EXPECT_EQ(ShardShare(10, 2, 4), 2u);
  EXPECT_EQ(ShardShare(10, 3, 4), 2u);
  // A finite budget smaller than the fleet must not round any shard down
  // to 0 (= unlimited); the clamp hands out 1 instead.
  for (std::size_t s = 0; s < 4; ++s) EXPECT_EQ(ShardShare(1, s, 4), 1u);
}

TEST(ShardRouterTest, AggregateStatsParseAndMerge) {
  ShardStatsSnapshot a, b;
  ASSERT_TRUE(ParseAggregateStats(
      "stats sessions=2 active=1 queue=3 reserved_bytes=1024 "
      "peak_reserved_bytes=4096 admitted=10 rejected=2 queued=5 cancelled=1",
      &a));
  EXPECT_EQ(a.sessions, 2u);
  EXPECT_EQ(a.queue, 3u);
  EXPECT_EQ(a.cancelled, 1u);
  ASSERT_TRUE(ParseAggregateStats(
      "stats sessions=1 active=0 queue=0 reserved_bytes=512 "
      "peak_reserved_bytes=512 admitted=3 rejected=0 queued=0 cancelled=2",
      &b));
  EXPECT_EQ(
      MergeAggregateStats({a, b}, 3),
      "stats sessions=3 active=1 queue=3 reserved_bytes=1536 "
      "peak_reserved_bytes=4608 admitted=13 rejected=2 queued=5 cancelled=3 "
      "shards=3 up=2");
  // Missing counters (e.g. an error line from a dead shard) parse to false.
  ShardStatsSnapshot c;
  EXPECT_FALSE(ParseAggregateStats("err shard 1 down", &c));
  EXPECT_FALSE(ParseAggregateStats("stats sessions=1 active=0", &c));
}

TEST(ShardRouterTest, RoutedEvalIsByteIdenticalToDirectServer) {
  const std::string session = NameOnShard(1, 2);
  const std::vector<std::string> script = {
      StrCat("open ", session, " k=3"),
      StrCat("domain ", session, " 12"),
      CycleRelLine(session, 12),
      StrCat("eval 9 ", session, " ", kTcQuery),
      "drain",
  };

  // Direct single-process run.
  Server direct;
  std::mutex direct_mutex;
  std::vector<std::string> direct_chunks;
  for (const auto& line : script) {
    direct.HandleLine(line, [&](const std::string& chunk) {
      std::lock_guard<std::mutex> lock(direct_mutex);
      direct_chunks.push_back(chunk);
    });
  }

  // Same conversation through a 2-shard router.
  RouterHarness harness(2);
  TestClient client(harness.router());
  for (const auto& line : script) {
    harness.router().HandleLine(client.client, line);
  }

  // Every control response matches, and the result block — the served
  // payload — is byte-identical, including the client's original id.
  std::string direct_block;
  {
    std::lock_guard<std::mutex> lock(direct_mutex);
    for (const auto& chunk : direct_chunks) {
      if (chunk.rfind("result 9 ", 0) == 0) direct_block = chunk;
      EXPECT_NE(client.All().find(chunk), std::string::npos) << chunk;
    }
  }
  ASSERT_FALSE(direct_block.empty());
  EXPECT_NE(direct_block.find("144 tuple(s)"), std::string::npos)
      << direct_block;
  EXPECT_EQ(client.Block(9), direct_block);
}

TEST(ShardRouterTest, ConsolidatedStatsSumAcrossShards) {
  RouterHarness harness(2);
  TestClient client(harness.router());
  const std::string on0 = NameOnShard(0, 2);
  const std::string on1 = NameOnShard(1, 2);
  for (const std::string& name : {on0, on1}) {
    harness.router().HandleLine(client.client, StrCat("open ", name, " k=3"));
    harness.router().HandleLine(client.client, StrCat("domain ", name, " 6"));
    harness.router().HandleLine(client.client, CycleRelLine(name, 6));
    EXPECT_TRUE(client.Contains(StrCat("ok open ", name, "\n")));
  }
  harness.router().HandleLine(client.client, StrCat("eval 1 ", on0, " ", kTcQuery));
  harness.router().HandleLine(client.client, StrCat("eval 2 ", on1, " ", kTcQuery));
  harness.router().HandleLine(client.client, "drain");
  EXPECT_TRUE(client.Contains("result 1 ok\n")) << client.All();
  EXPECT_TRUE(client.Contains("result 2 ok\n")) << client.All();

  // Each worker only admitted its own query; the consolidated line sums
  // the fleet's counters into the single-process field order.
  harness.router().HandleLine(client.client, "stats");
  EXPECT_TRUE(client.Contains("stats sessions=2 active=0 queue=0 "
                              "reserved_bytes=0 "))
      << client.All();
  EXPECT_TRUE(client.Contains(" admitted=2 rejected=0 queued=0 cancelled=0 "
                              "shards=2 up=2\n"))
      << client.All();

  // Per-session stats still route to the owning shard untouched.
  harness.router().HandleLine(client.client, StrCat("stats ", on1));
  EXPECT_TRUE(client.Contains(StrCat("stats session=", on1, " ")))
      << client.All();

  harness.router().HandleLine(client.client, StrCat("close ", on0));
  harness.router().HandleLine(client.client, StrCat("close ", on1));
  harness.router().HandleLine(client.client, "stats");
  EXPECT_TRUE(client.Contains("stats sessions=0 active=0 queue=0 "
                              "reserved_bytes=0 "))
      << client.All();
}

TEST(ShardRouterTest, DuplicateInflightIdRejectedFleetWide) {
  RouterHarness harness(2);
  TestClient client(harness.router());
  const std::string slow = NameOnShard(0, 2);
  const std::string fast = NameOnShard(1, 2);
  harness.router().HandleLine(client.client, StrCat("open ", slow, " k=2"));
  harness.router().HandleLine(client.client, StrCat("domain ", slow, " 18"));
  harness.router().HandleLine(client.client, OrderRelLine(slow, 18));
  harness.router().HandleLine(client.client, StrCat("open ", fast, " k=3"));
  harness.router().HandleLine(client.client, StrCat("domain ", fast, " 6"));
  harness.router().HandleLine(client.client, CycleRelLine(fast, 6));

  harness.router().HandleLine(client.client,
                              StrCat("eval 7 ", slow, " ", kCounterQuery));
  EXPECT_TRUE(client.Contains("ok eval 7\n")) << client.All();

  // Same id on the *other* shard: the router must reject it with the
  // single-process error text — per-worker uniqueness is not enough.
  harness.router().HandleLine(client.client,
                              StrCat("eval 7 ", fast, " ", kTcQuery));
  EXPECT_TRUE(client.Contains(
      "err eval 7: InvalidArgument: query id 7 is already in flight\n"))
      << client.All();

  harness.router().HandleLine(client.client, "cancel 7");
  EXPECT_TRUE(client.Contains("ok cancel 7\n")) << client.All();
  ASSERT_TRUE(WaitFor([&] { return !client.Block(7).empty(); }));
  EXPECT_EQ(client.Block(7).rfind("result 7 error Cancelled\n", 0), 0u)
      << client.Block(7);

  // Once the block is back the id is free again, on any shard.
  harness.router().HandleLine(client.client,
                              StrCat("eval 7 ", fast, " ", kTcQuery));
  harness.router().HandleLine(client.client, "drain");
  const std::string all = client.All();
  EXPECT_NE(all.rfind("ok eval 7\n"), all.find("ok eval 7\n")) << all;
  EXPECT_TRUE(client.Contains("result 7 ok\n")) << all;
}

TEST(ShardRouterTest, CancelErrorTextMatchesDirectServer) {
  Server direct;
  std::string direct_response;
  direct.HandleLine("cancel 424242", [&](const std::string& chunk) {
    direct_response = chunk;
  });

  RouterHarness harness(2);
  TestClient client(harness.router());
  harness.router().HandleLine(client.client, "cancel 424242");
  ASSERT_EQ(client.chunks.size(), 1u);
  EXPECT_EQ(client.chunks[0], direct_response);
}

TEST(ShardRouterTest, CancelBypassesBlockedDrain) {
  RouterHarness harness(2);
  TestClient client(harness.router());
  const std::string slow = NameOnShard(0, 2);
  harness.router().HandleLine(client.client, StrCat("open ", slow, " k=2"));
  harness.router().HandleLine(client.client, StrCat("domain ", slow, " 18"));
  harness.router().HandleLine(client.client, OrderRelLine(slow, 18));
  harness.router().HandleLine(client.client,
                              StrCat("eval 3 ", slow, " ", kCounterQuery));
  EXPECT_TRUE(client.Contains("ok eval 3\n")) << client.All();

  // Park a drain on the request path — it blocks until the counter query
  // finishes, which ungoverned takes ~2^18 stages.
  std::thread drainer([&] { harness.router().HandleLine(client.client, "drain"); });
  std::this_thread::sleep_for(milliseconds(50));

  // The cancel must overtake it via the out-of-band channel; if it queued
  // behind the drain this would deadlock (cancel waits for drain, drain
  // waits for the query, the query waits for cancel).
  harness.router().HandleLine(client.client, "cancel 3");
  drainer.join();
  EXPECT_TRUE(client.Contains("ok cancel 3\n")) << client.All();
  EXPECT_TRUE(client.Contains("ok drain\n")) << client.All();
  ASSERT_TRUE(WaitFor([&] { return !client.Block(3).empty(); }));
  EXPECT_EQ(client.Block(3).rfind("result 3 error Cancelled\n", 0), 0u)
      << client.Block(3);
}

TEST(ShardRouterTest, WorkerCrashFailsInFlightAndReportsShardDown) {
  // A scripted fake worker stands in for a crashing process: it acks an
  // open and an eval, then slams all three fds shut mid-query.
  ShardRouter::Options options;
  options.num_shards = 1;
  ShardRouter router(std::move(options));
  int req[2], can[2], resp[2];
  ASSERT_EQ(::pipe(req), 0);
  ASSERT_EQ(::pipe(can), 0);
  ASSERT_EQ(::pipe(resp), 0);
  ASSERT_TRUE(router.AttachWorker(0, req[1], can[1], resp[0]).ok());

  std::thread fake([in = req[0], cancel = can[0], out = resp[1]] {
    auto read_line = [in] {
      std::string line;
      char c = 0;
      while (::read(in, &c, 1) == 1 && c != '\n') line += c;
      return line;
    };
    std::istringstream open_line(read_line());  // "open s .."
    std::string cmd, name;
    open_line >> cmd >> name;
    std::string ack = StrCat("ok open ", name, "\n");
    ASSERT_EQ(::write(out, ack.data(), ack.size()),
              static_cast<ssize_t>(ack.size()));
    std::istringstream eval_line(read_line());  // "eval <iid> s .."
    std::string id_tok;
    eval_line >> cmd >> id_tok;
    ack = StrCat("ok eval ", id_tok, "\n");
    ASSERT_EQ(::write(out, ack.data(), ack.size()),
              static_cast<ssize_t>(ack.size()));
    ::close(out);  // crash: EOF with a query in flight
    ::close(in);
    ::close(cancel);
  });

  TestClient client(router);
  router.HandleLine(client.client, "open s k=2");
  EXPECT_TRUE(client.Contains("ok open s\n")) << client.All();
  router.HandleLine(client.client, StrCat("eval 5 s ", kCounterQuery));
  EXPECT_TRUE(client.Contains("ok eval 5\n")) << client.All();

  // The reader sees EOF: shard marked down, the acknowledged eval completed
  // as an Unavailable error block (never a hang), no respawn without a
  // worker command.
  ASSERT_TRUE(WaitFor([&] { return !router.shard_up(0); }));
  ASSERT_TRUE(WaitFor([&] { return !client.Block(5).empty(); }));
  EXPECT_EQ(client.Block(5),
            "result 5 error Unavailable\n  Unavailable: shard 0 down\n"
            "end 5\n");
  EXPECT_EQ(router.restarts(), 0u);

  // The dead worker's sessions are gone; new work on the shard is refused
  // with the down error, and a fleet stats still answers (up=0).
  router.HandleLine(client.client, "open t k=2");
  EXPECT_TRUE(client.Contains("err shard 0 down\n")) << client.All();
  router.HandleLine(client.client, "stats");
  EXPECT_TRUE(client.Contains(" shards=1 up=0\n")) << client.All();

  fake.join();
  router.Shutdown();
}

TEST(ShardRouterTest, RestartedWorkerCountsInUpOnlyAfterReack) {
  // A scripted worker whose first incarnation answers exactly one line and
  // exits, and whose second incarnation stays wedged (answering nothing)
  // until a go-file appears. Between the respawn and the first line back,
  // a sessionless stats must neither hang on the silent process nor count
  // it as up.
  char tmpl[] = "/tmp/bvq_reack_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  const std::string marker = dir + "/incarnation1";
  const std::string go = dir + "/go";
  const std::string stats_line =
      "stats sessions=0 active=0 queue=0 reserved_bytes=0 "
      "peak_reserved_bytes=0 admitted=0 rejected=0 queued=0 cancelled=0";
  const std::string script = StrCat(
      "if [ ! -e ", marker, " ]; then : > ", marker, "; read line; echo \"",
      stats_line, "\"; exit 0; fi; while [ ! -e ", go,
      " ]; do sleep 0.05; done; while read line; do echo \"", stats_line,
      "\"; done");

  ShardRouter::Options options;
  options.num_shards = 1;
  options.worker_commands = {{"/bin/sh", "-c", script}};
  ShardRouter router(std::move(options));
  ASSERT_TRUE(router.Start().ok());
  TestClient client(router);

  router.HandleLine(client.client, "stats");
  EXPECT_TRUE(client.Contains(" shards=1 up=1\n")) << client.All();
  // Answering that stats was incarnation 1's last act; wait for the
  // respawn (observing the restart also observes the shard unacked).
  ASSERT_TRUE(WaitFor([&] { return router.restarts() == 1; }));

  // Respawned but silent: skipped, promptly, with up=0.
  router.HandleLine(client.client, "stats");
  const std::string all = client.All();
  EXPECT_NE(all.rfind(" shards=1 up=0\n"), std::string::npos) << all;

  // Unwedge incarnation 2. The router's own probe re-acks the shard — no
  // client traffic is needed for up= to recover, but poll via stats.
  { std::ofstream unwedge(go); }
  ASSERT_TRUE(WaitFor([&] {
    TestClient probe(router);
    router.HandleLine(probe.client, "stats");
    return probe.Contains(" shards=1 up=1\n");
  }));
  router.Shutdown();
}

TEST(ServeCacheTest, CacheDirPrewarmsARestartedServer) {
  // Two Server instances sharing a cache dir stand in for a process
  // restart: the second serves its first query with cache hits and a
  // byte-identical result block.
  char tmpl[] = "/tmp/bvq_cachedir_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  ServeOptions options;
  options.cache_dir = tmpl;

  const std::vector<std::string> setup = {
      "open s k=3",
      "domain s 6",
      "rel s E/2 0 1 ; 1 2 ; 2 3 ; 3 4 ; 4 5 ; 5 0 ;",
      StrCat("eval 1 s ", kTcQuery),
      "drain",
  };
  auto run = [&](std::vector<std::string>* chunks_out) {
    Server server(options);
    std::mutex mu;
    auto emit = [&](const std::string& chunk) {
      std::lock_guard<std::mutex> lock(mu);
      chunks_out->push_back(chunk);
    };
    for (const std::string& line : setup) server.HandleLine(line, emit);
    server.HandleLine("stats s", emit);
    server.HandleLine("quit", emit);  // snapshots every session
  };

  std::vector<std::string> first, second;
  run(&first);
  ASSERT_TRUE(std::ifstream(StrCat(tmpl, "/s.bvqcache")).good());
  run(&second);

  auto block = [](const std::vector<std::string>& chunks) {
    for (const std::string& c : chunks) {
      if (c.rfind("result 1 ", 0) == 0) return c;
    }
    return std::string();
  };
  auto stats = [](const std::vector<std::string>& chunks) {
    for (const std::string& c : chunks) {
      if (c.rfind("stats session=s ", 0) == 0) return c;
    }
    return std::string();
  };
  ASSERT_FALSE(block(first).empty());
  EXPECT_EQ(block(second), block(first));  // byte-identical across restart
  // The restart's very first batch was served warm from the snapshot.
  EXPECT_EQ(stats(second).find(" cache_hits=0 "), std::string::npos)
      << stats(second);
  EXPECT_EQ(stats(second).find(" cache_restored=0 "), std::string::npos)
      << stats(second);
  EXPECT_NE(stats(first).find(" cache_restored=0 "), std::string::npos)
      << stats(first);

  // A corrupted snapshot degrades the next restart to a cold start: same
  // bytes out, no hits, no protocol error.
  {
    std::fstream f(StrCat(tmpl, "/s.bvqcache"),
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(30);
    char b = 0;
    f.seekg(30);
    f.get(b);
    f.seekp(30);
    f.put(static_cast<char>(b ^ 0x40));
  }
  std::vector<std::string> third;
  run(&third);
  EXPECT_EQ(block(third), block(first));
  EXPECT_NE(stats(third).find(" cache_hits=0 "), std::string::npos)
      << stats(third);
}

TEST(ServeCacheTest, ProtocolCacheSaveRestoreCommands) {
  const std::string file = ::testing::TempDir() + "/bvq_proto_cache.bvqcache";
  std::remove(file.c_str());

  std::vector<std::string> chunks;
  std::mutex mu;
  auto emit = [&](const std::string& chunk) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.push_back(chunk);
  };
  auto all = [&] {
    std::lock_guard<std::mutex> lock(mu);
    std::string joined;
    for (const auto& c : chunks) joined += c;
    return joined;
  };

  std::string first_block;
  {
    Server a;  // no cache_dir: only the explicit commands move snapshots
    a.HandleLine("open s k=3", emit);
    a.HandleLine("domain s 6", emit);
    a.HandleLine("rel s E/2 0 1 ; 1 2 ; 2 3 ; 3 4 ; 4 5 ; 5 0 ;", emit);
    a.HandleLine(StrCat("eval 1 s ", kTcQuery), emit);
    a.HandleLine("drain", emit);
    a.HandleLine(StrCat("cache s save ", file), emit);
    EXPECT_NE(all().find("ok cache s save\n"), std::string::npos) << all();
    a.HandleLine("cache s save", emit);  // missing path
    EXPECT_NE(all().find("err cache s: save needs a file"), std::string::npos)
        << all();
    std::lock_guard<std::mutex> lock(mu);
    for (const auto& c : chunks) {
      if (c.rfind("result 1 ", 0) == 0) first_block = c;
    }
    ASSERT_FALSE(first_block.empty());
    chunks.clear();
  }

  Server b;
  b.HandleLine("open s k=3", emit);
  b.HandleLine("domain s 6", emit);
  b.HandleLine("rel s E/2 0 1 ; 1 2 ; 2 3 ; 3 4 ; 4 5 ; 5 0 ;", emit);
  b.HandleLine(StrCat("cache s restore ", file), emit);
  EXPECT_NE(all().find("ok cache s restore\n"), std::string::npos) << all();
  b.HandleLine(StrCat("eval 1 s ", kTcQuery), emit);
  b.HandleLine("drain", emit);
  b.HandleLine("stats s", emit);
  const std::string joined = all();
  EXPECT_NE(joined.find(first_block), std::string::npos) << joined;
  EXPECT_EQ(joined.find(" cache_hits=0 "), std::string::npos) << joined;

  // Restoring garbage is an err line, never a crash, and the session keeps
  // serving correct answers.
  const std::string garbage = ::testing::TempDir() + "/bvq_garbage.bvqcache";
  {
    std::ofstream out(garbage, std::ios::binary);
    out << "not a snapshot";
  }
  b.HandleLine(StrCat("cache s restore ", garbage), emit);
  EXPECT_NE(all().find("err cache s restore:"), std::string::npos) << all();
  b.HandleLine(StrCat("eval 2 s ", kTcQuery), emit);
  b.HandleLine("drain", emit);
  // Same payload bytes under the new id: swap the frame lines of block 1.
  std::string expected_block2 =
      "result 2 " + first_block.substr(std::string("result 1 ").size());
  const std::string old_tail = "end 1\n";
  ASSERT_GE(expected_block2.size(), old_tail.size());
  expected_block2.replace(expected_block2.size() - old_tail.size(),
                          old_tail.size(), "end 2\n");
  EXPECT_NE(all().find(expected_block2), std::string::npos) << all();
  std::remove(file.c_str());
  std::remove(garbage.c_str());
}

// --- batched queries (DESIGN.md §14) ---------------------------------------

// Collects protocol chunks and retrieves result blocks by id.
struct ChunkSink {
  std::mutex mutex;
  std::vector<std::string> chunks;
  Server::Emit Emit() {
    return [this](const std::string& chunk) {
      std::lock_guard<std::mutex> lock(mutex);
      chunks.push_back(chunk);
    };
  }
  std::string All() {
    std::lock_guard<std::mutex> lock(mutex);
    std::string all;
    for (const auto& chunk : chunks) all += chunk;
    return all;
  }
  std::string Block(std::size_t id) {
    std::lock_guard<std::mutex> lock(mutex);
    const std::string prefix = StrCat("result ", id, " ");
    for (const auto& chunk : chunks) {
      if (chunk.rfind(prefix, 0) == 0) return chunk;
    }
    return "";
  }
};

constexpr char kPathQuery[] = "(x1,x2) exists x3 . (E(x1,x3) & E(x3,x2))";
constexpr char kPathOrEdgeQuery[] =
    "(x1,x2) exists x3 . (E(x1,x3) & E(x3,x2)) | E(x1,x2)";

TEST(ServeBatchTest, BatchedResultsAreByteIdenticalToSerialRuns) {
  // Serial reference: the same queries one by one, cache off (the seed
  // evaluation path — no sharing, no warmth).
  Server serial;
  ChunkSink serial_sink;
  const auto semit = serial_sink.Emit();
  serial.HandleLine("open ref k=3 cache=0", semit);
  serial.HandleLine("domain ref 8", semit);
  serial.HandleLine(CycleRelLine("ref", 8), semit);
  serial.HandleLine(StrCat("eval 1 ref ", kPathQuery), semit);
  serial.HandleLine(StrCat("eval 2 ref ", kPathOrEdgeQuery), semit);
  serial.HandleLine(StrCat("eval 3 ref ", kTcQuery), semit);
  serial.HandleLine("drain", semit);

  // The batch: same ids, same queries, planned together.
  Server server;
  ChunkSink sink;
  const auto emit = sink.Emit();
  server.HandleLine("open s k=3", emit);
  server.HandleLine("domain s 8", emit);
  server.HandleLine(CycleRelLine("s", 8), emit);
  server.HandleLine("batch s begin", emit);
  server.HandleLine(StrCat("batch s eval 1 ", kPathQuery), emit);
  server.HandleLine(StrCat("batch s eval 2 ", kPathOrEdgeQuery), emit);
  server.HandleLine(StrCat("batch s eval 3 ", kTcQuery), emit);
  server.HandleLine("batch s end", emit);
  server.HandleLine("drain", emit);

  EXPECT_NE(sink.All().find("ok batch s begin\n"), std::string::npos)
      << sink.All();
  EXPECT_NE(sink.All().find("ok batch s eval 1\n"), std::string::npos)
      << sink.All();
  // The end ack carries the plan stats; queries 1 and 2 share the
  // two-step-path subtree, so something deduplicated.
  EXPECT_NE(sink.All().find("ok batch s end queries=3 "), std::string::npos)
      << sink.All();
  EXPECT_EQ(sink.All().find("dedup=1.00"), std::string::npos) << sink.All();

  for (const std::size_t id : {1u, 2u, 3u}) {
    ASSERT_NE(serial_sink.Block(id), "") << id;
    EXPECT_EQ(sink.Block(id), serial_sink.Block(id)) << id;
  }

  // The per-session stats line carries the batch counters.
  server.HandleLine("stats s", emit);
  EXPECT_NE(sink.All().find(" batch=1 batches=1 batch_queries=3 "),
            std::string::npos)
      << sink.All();
}

TEST(ServeBatchTest, KillSwitchDegradesToSerialWithIdenticalBytes) {
  Server server;
  ChunkSink sink;
  const auto emit = sink.Emit();
  server.HandleLine("open s k=3 batch=0", emit);
  server.HandleLine("domain s 8", emit);
  server.HandleLine(CycleRelLine("s", 8), emit);
  server.HandleLine("batch s begin", emit);
  server.HandleLine(StrCat("batch s eval 1 ", kPathQuery), emit);
  server.HandleLine(StrCat("batch s eval 2 ", kPathOrEdgeQuery), emit);
  server.HandleLine("batch s end", emit);
  server.HandleLine("drain", emit);

  // Planning skipped: zero nodes, dedup 1.00 — but the queries still ran.
  EXPECT_NE(sink.All().find("ok batch s end queries=2 nodes=0 shared=0 "
                            "materialized=0 stages=0 dedup=1.00\n"),
            std::string::npos)
      << sink.All();

  Server ref;
  ChunkSink ref_sink;
  const auto remit = ref_sink.Emit();
  ref.HandleLine("open s k=3", remit);
  ref.HandleLine("domain s 8", remit);
  ref.HandleLine(CycleRelLine("s", 8), remit);
  ref.HandleLine(StrCat("eval 1 s ", kPathQuery), remit);
  ref.HandleLine(StrCat("eval 2 s ", kPathOrEdgeQuery), remit);
  ref.HandleLine("drain", remit);
  for (const std::size_t id : {1u, 2u}) {
    ASSERT_NE(ref_sink.Block(id), "") << id;
    EXPECT_EQ(sink.Block(id), ref_sink.Block(id)) << id;
  }
}

TEST(ServeBatchTest, BatchProtocolErrorPaths) {
  Server server;
  ChunkSink sink;
  const auto emit = sink.Emit();
  server.HandleLine("open s k=3", emit);
  server.HandleLine("batch s end", emit);
  EXPECT_NE(sink.All().find("err batch s end: InvalidArgument: no batch in "
                            "progress for session s\n"),
            std::string::npos)
      << sink.All();
  server.HandleLine("batch nosuch begin", emit);
  EXPECT_NE(sink.All().find("err batch nosuch begin:"), std::string::npos)
      << sink.All();
  server.HandleLine("batch s begin", emit);
  server.HandleLine("batch s begin", emit);
  EXPECT_NE(sink.All().find("err batch s begin: InvalidArgument: a batch is "
                            "already in progress for session s\n"),
            std::string::npos)
      << sink.All();
  server.HandleLine("batch s eval 1 (x1) E(x1,x1)", emit);
  server.HandleLine("batch s eval 1 (x1) E(x1,x1)", emit);
  EXPECT_NE(sink.All().find("err batch s eval 1: InvalidArgument: query id 1 "
                            "is already in flight\n"),
            std::string::npos)
      << sink.All();
  server.HandleLine("batch s frobnicate", emit);
  EXPECT_NE(sink.All().find("err batch s: expected begin|eval|end"),
            std::string::npos)
      << sink.All();
  // An unparseable query is still accepted into the batch (planning skips
  // it) and reproduces the serial parse error as its result block.
  server.HandleLine("batch s eval 2 (((", emit);
  server.HandleLine("batch s end", emit);
  server.HandleLine("drain", emit);
  EXPECT_NE(sink.Block(2).find("result 2 error"), std::string::npos)
      << sink.All();
}

TEST(ServeBatchTest, CancellingOneBatchMemberLeavesTheOthersIntact) {
  Server server;
  SessionOptions so;
  so.num_vars = 3;
  ASSERT_TRUE(server.Open("s", so, CycleDb(8)).ok());

  struct Outcomes {
    std::mutex mutex;
    std::condition_variable cv;
    std::map<std::uint64_t, EvalOutcome> by_id;
  } outcomes;
  auto done = [&outcomes](const EvalOutcome& o) {
    {
      std::lock_guard<std::mutex> lock(outcomes.mutex);
      outcomes.by_id[o.id] = o;
    }
    outcomes.cv.notify_all();
  };

  ASSERT_TRUE(server.BatchBegin("s").ok());
  ASSERT_TRUE(server.BatchAddWithId(1, "s", kPathQuery).ok());
  ASSERT_TRUE(server.BatchAddWithId(2, "s", kPathQuery).ok());
  ASSERT_TRUE(server.BatchAddWithId(3, "s", kPathOrEdgeQuery).ok());
  // Batch ids are cancellable from the moment they are collected.
  ASSERT_TRUE(server.Cancel(2, "changed my mind").ok());
  auto stats = server.BatchEnd("s", done);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->queries, 3u);
  {
    std::unique_lock<std::mutex> lock(outcomes.mutex);
    outcomes.cv.wait(lock, [&] { return outcomes.by_id.size() == 3u; });
  }
  server.Drain();

  // The cancelled member failed alone; its shared subtree still served the
  // survivors, whose results match an untouched serial run.
  EXPECT_EQ(outcomes.by_id[2].status.code(), StatusCode::kCancelled);
  ASSERT_TRUE(outcomes.by_id[1].status.ok())
      << outcomes.by_id[1].status.ToString();
  ASSERT_TRUE(outcomes.by_id[3].status.ok())
      << outcomes.by_id[3].status.ToString();
  SessionOptions ref;
  ref.num_vars = 3;
  ref.cross_query_cache = false;
  ASSERT_TRUE(server.Open("ref", ref, CycleDb(8)).ok());
  EXPECT_EQ(outcomes.by_id[1].payload,
            server.EvalSync("ref", kPathQuery).payload);
  EXPECT_EQ(outcomes.by_id[3].payload,
            server.EvalSync("ref", kPathOrEdgeQuery).payload);
}

TEST(ServeBatchTest, CloseDropsAPendingBatchAndItsIds) {
  Server server;
  ASSERT_TRUE(server.Open("s", SessionOptions{}, CycleDb(4)).ok());
  ASSERT_TRUE(server.BatchBegin("s").ok());
  ASSERT_TRUE(server.BatchAddWithId(5, "s", kPathQuery).ok());
  ASSERT_TRUE(server.Close("s").ok());
  // The collected id is gone with the batch: cancelling it is NotFound,
  // and reopening the session finds no stale batch in progress.
  EXPECT_EQ(server.Cancel(5).code(), StatusCode::kNotFound);
  ASSERT_TRUE(server.Open("s", SessionOptions{}, CycleDb(4)).ok());
  EXPECT_EQ(server.BatchEnd("s", [](const EvalOutcome&) {}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ServeBatchTest, HelpListsEveryProtocolCommand) {
  Server server;
  ChunkSink sink;
  server.HandleLine("help", sink.Emit());
  const std::string all = sink.All();
  EXPECT_EQ(all.rfind("ok help\n", 0), 0u) << all;
  for (const char* cmd :
       {"open ", "domain ", "rel ", "load ", "eval ", "batch ", "cancel ",
        "close ", "cache ", "stats ", "drain", "help", "quit"}) {
    EXPECT_NE(all.find(StrCat("\n  ", cmd)), std::string::npos) << cmd;
  }
  // Unknown commands point at it and echo the offending token.
  server.HandleLine("frobnicate now", sink.Emit());
  EXPECT_NE(sink.All().find("err unknown command \"frobnicate\"; try help\n"),
            std::string::npos)
      << sink.All();
}

TEST(ShardRouterTest, RoutedBatchIsByteIdenticalToDirectServer) {
  const std::string session = NameOnShard(1, 2);
  const std::vector<std::string> script = {
      StrCat("open ", session, " k=3"),
      StrCat("domain ", session, " 8"),
      CycleRelLine(session, 8),
      StrCat("batch ", session, " begin"),
      StrCat("batch ", session, " eval 7 ", kPathQuery),
      StrCat("batch ", session, " eval 8 ", kPathOrEdgeQuery),
      StrCat("batch ", session, " end"),
      "drain",
  };

  Server direct;
  ChunkSink direct_sink;
  for (const auto& line : script) direct.HandleLine(line, direct_sink.Emit());

  RouterHarness harness(2);
  TestClient client(harness.router());
  for (const auto& line : script) {
    harness.router().HandleLine(client.client, line);
  }

  // Control responses — including the stats-bearing end ack — and the
  // result blocks match byte for byte, with the client's original ids.
  {
    std::lock_guard<std::mutex> lock(direct_sink.mutex);
    for (const auto& chunk : direct_sink.chunks) {
      EXPECT_NE(client.All().find(chunk), std::string::npos) << chunk;
    }
  }
  for (const std::size_t id : {7u, 8u}) {
    ASSERT_NE(direct_sink.Block(id), "") << id;
    EXPECT_EQ(client.Block(id), direct_sink.Block(id)) << id;
  }
  EXPECT_TRUE(client.Contains(StrCat("ok batch ", session, " end queries=2 ")))
      << client.All();

  // `help` is answered by the router itself, byte-identical to a worker's.
  harness.router().HandleLine(client.client, "help");
  EXPECT_TRUE(client.Contains("ok help\n")) << client.All();
  EXPECT_TRUE(client.Contains("batch <s> end")) << client.All();

  // A duplicate batch-eval id is rejected fleet-wide with the worker's
  // exact bytes, before any worker sees the line.
  harness.router().HandleLine(
      client.client, StrCat("batch ", session, " begin"));
  harness.router().HandleLine(
      client.client, StrCat("batch ", session, " eval 9 ", kPathQuery));
  harness.router().HandleLine(
      client.client, StrCat("batch ", session, " eval 9 ", kPathQuery));
  EXPECT_TRUE(client.Contains(
      StrCat("err batch ", session,
             " eval 9: InvalidArgument: query id 9 is already in flight\n")))
      << client.All();
}

// --- cache clear racing a running eval -------------------------------------

TEST(ServeCacheTest, ClearRacingARunningEvalIsSafeAndByteIdentical) {
  // `cache <s> clear` drops resident entries while queries are mid-flight;
  // the contract is memory reclamation with zero semantic effect. Hammer
  // clear against a stream of cache-warmed evals and hold the results to
  // the cache-off bytes. (The interesting failure modes — a clear between
  // a probe and an insert, a clear between two subtree probes of one
  // evaluation — are what TSan watches here.)
  Server server;
  ASSERT_TRUE(server.Open("s", SessionOptions{}, CycleDb(10)).ok());
  SessionOptions no_cache;
  no_cache.cross_query_cache = false;
  ASSERT_TRUE(server.Open("ref", no_cache, CycleDb(10)).ok());
  const std::string want = server.EvalSync("ref", kTcQuery).payload;
  ASSERT_FALSE(want.empty());

  std::atomic<bool> stop{false};
  ChunkSink sink;
  std::thread clearer([&] {
    const auto emit = sink.Emit();
    while (!stop.load(std::memory_order_acquire)) {
      server.HandleLine("cache s clear", emit);
    }
  });
  for (int i = 0; i < 20; ++i) {
    const EvalOutcome out = server.EvalSync("s", kTcQuery);
    ASSERT_TRUE(out.status.ok()) << out.status.ToString();
    EXPECT_EQ(out.payload, want) << i;
  }
  stop.store(true, std::memory_order_release);
  clearer.join();
  EXPECT_NE(sink.All().find("ok cache s clear\n"), std::string::npos);
}

}  // namespace
}  // namespace bvq::serve
