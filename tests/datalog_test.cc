#include <gtest/gtest.h>

#include "common/rng.h"
#include "datalog/datalog.h"
#include "db/generators.h"

namespace bvq {
namespace datalog {
namespace {

Database GraphDb(std::size_t n, const Relation& edges) {
  Database db(n);
  Status s = db.AddRelation("e", edges);
  EXPECT_TRUE(s.ok());
  return db;
}

TEST(DatalogParserTest, ParsesRulesAndFacts) {
  auto p = ParseProgram(
      "% transitive closure\n"
      "tc(X,Y) :- e(X,Y).\n"
      "tc(X,Y) :- e(X,Z), tc(Z,Y).\n"
      "start(0).\n");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->rules.size(), 3u);
  EXPECT_EQ(p->rules[0].head.pred, "tc");
  EXPECT_EQ(p->rules[2].body.size(), 0u);
  EXPECT_FALSE(p->rules[2].head.terms[0].is_var);
  EXPECT_EQ(p->IdbPredicates(),
            (std::vector<std::string>{"tc", "start"}));
}

TEST(DatalogParserTest, Errors) {
  EXPECT_FALSE(ParseProgram("p(X) :- q(X)").ok());      // missing '.'
  EXPECT_FALSE(ParseProgram("p(X).").ok());             // unrestricted head
  EXPECT_FALSE(ParseProgram("p(lower) :- q(X).").ok()); // bad term
}

TEST(DatalogEngineTest, TransitiveClosure) {
  Database db = GraphDb(5, PathGraph(5));
  auto p = ParseProgram(
      "tc(X,Y) :- e(X,Y).\n"
      "tc(X,Y) :- e(X,Z), tc(Z,Y).\n");
  ASSERT_TRUE(p.ok());
  DatalogEngine engine(db);
  auto out = engine.Evaluate(*p);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  auto tc = out->GetRelation("tc");
  ASSERT_TRUE(tc.ok());
  EXPECT_EQ((*tc)->size(), 10u);
  EXPECT_TRUE((*tc)->Contains(Tuple{0, 4}));
  EXPECT_FALSE((*tc)->Contains(Tuple{1, 0}));
}

TEST(DatalogEngineTest, FactsAndConstants) {
  Database db(4);
  ASSERT_TRUE(db.AddRelation("e", PathGraph(4)).ok());
  auto p = ParseProgram(
      "r(0).\n"
      "r(Y) :- r(X), e(X,Y).\n"
      "two(X) :- e(1, X).\n");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  DatalogEngine engine(db);
  auto out = engine.Evaluate(*p);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out->GetRelation("r"))->size(), 4u);
  EXPECT_EQ((**out->GetRelation("two")), Relation::FromTuples(1, {{2}}));
}

TEST(DatalogEngineTest, NaiveAndSemiNaiveAgree) {
  Rng rng(17);
  auto p = ParseProgram(
      "tc(X,Y) :- e(X,Y).\n"
      "tc(X,Y) :- tc(X,Z), tc(Z,Y).\n"
      "both(X) :- tc(X,X).\n");
  ASSERT_TRUE(p.ok());
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t n = 3 + rng.Below(5);
    Database db = GraphDb(n, RandomGraph(n, 0.3, rng, true));
    DatalogEngine naive_engine(db);
    auto naive = naive_engine.Evaluate(*p, DatalogMode::kNaive);
    ASSERT_TRUE(naive.ok());
    DatalogEngine semi_engine(db);
    auto semi = semi_engine.Evaluate(*p, DatalogMode::kSemiNaive);
    ASSERT_TRUE(semi.ok());
    EXPECT_EQ(*naive, *semi);
    // Semi-naive should not fire more total joins than naive on recursive
    // programs with long derivations (sanity, not a strict theorem).
    EXPECT_GE(naive_engine.stats().rounds, 1u);
    EXPECT_GE(semi_engine.stats().rounds, 1u);
  }
}

TEST(DatalogEngineTest, RepeatedVariablesInBody) {
  Database db(4);
  ASSERT_TRUE(db.AddRelation(
                    "e", Relation::FromTuples(2, {{0, 0}, {1, 2}, {3, 3}}))
                  .ok());
  auto p = ParseProgram("loop(X) :- e(X,X).\n");
  ASSERT_TRUE(p.ok());
  DatalogEngine engine(db);
  auto out = engine.Evaluate(*p);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((**out->GetRelation("loop")),
            Relation::FromTuples(1, {{0}, {3}}));
}

TEST(DatalogEngineTest, MutualRecursion) {
  // even/odd distance from node 0 along a path.
  Database db(6);
  ASSERT_TRUE(db.AddRelation("e", PathGraph(6)).ok());
  auto p = ParseProgram(
      "even(0).\n"
      "odd(Y) :- even(X), e(X,Y).\n"
      "even(Y) :- odd(X), e(X,Y).\n");
  ASSERT_TRUE(p.ok());
  DatalogEngine engine(db);
  auto out = engine.Evaluate(*p);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((**out->GetRelation("even")),
            Relation::FromTuples(1, {{0}, {2}, {4}}));
  EXPECT_EQ((**out->GetRelation("odd")),
            Relation::FromTuples(1, {{1}, {3}, {5}}));
}

TEST(DatalogEngineTest, RejectsEdbRedefinition) {
  Database db = GraphDb(3, PathGraph(3));
  auto p = ParseProgram("e(X,Y) :- e(Y,X).\n");
  ASSERT_TRUE(p.ok());
  DatalogEngine engine(db);
  EXPECT_FALSE(engine.Evaluate(*p).ok());
}

TEST(DatalogEngineTest, UnknownPredicateFails) {
  Database db(3);
  auto p = ParseProgram("p(X) :- q(X).\n");
  ASSERT_TRUE(p.ok());
  DatalogEngine engine(db);
  EXPECT_FALSE(engine.Evaluate(*p).ok());
}

// --- stratified negation ------------------------------------------------------

TEST(StratifiedTest, StratifyAssignsLevels) {
  Database db(3);
  ASSERT_TRUE(db.AddRelation("e", PathGraph(3)).ok());
  auto p = datalog::ParseProgram(
      "reach(X) :- e(0, X).\n"
      "reach(Y) :- reach(X), e(X,Y).\n"
      "node(X) :- e(X,Y).\n"
      "node(Y) :- e(X,Y).\n"
      "unreached(X) :- node(X), not reach(X).\n");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  auto strata = datalog::Stratify(*p, db);
  ASSERT_TRUE(strata.ok()) << strata.status().ToString();
  EXPECT_EQ(strata->at("reach"), 0u);
  EXPECT_EQ(strata->at("node"), 0u);
  EXPECT_EQ(strata->at("unreached"), 1u);
}

TEST(StratifiedTest, RejectsRecursionThroughNegation) {
  Database db(2);
  auto p = datalog::ParseProgram(
      "p(X) :- q(X), not r(X).\n"
      "r(X) :- q(X), not p(X).\n");
  ASSERT_TRUE(p.ok());
  auto strata = datalog::Stratify(*p, db);
  ASSERT_FALSE(strata.ok());
  EXPECT_EQ(strata.status().code(), StatusCode::kTypeError);
}

TEST(StratifiedTest, UnreachableNodes) {
  // Two components: 0->1->2 and 3->4; reach from 0.
  Database db(5);
  ASSERT_TRUE(db.AddRelation(
                    "e", Relation::FromTuples(2, {{0, 1}, {1, 2}, {3, 4}}))
                  .ok());
  auto p = datalog::ParseProgram(
      "reach(0).\n"
      "reach(Y) :- reach(X), e(X,Y).\n"
      "node(X) :- e(X,Y).\n"
      "node(Y) :- e(X,Y).\n"
      "unreached(X) :- node(X), not reach(X).\n");
  ASSERT_TRUE(p.ok());
  for (auto mode : {datalog::DatalogMode::kNaive,
                    datalog::DatalogMode::kSemiNaive}) {
    datalog::DatalogEngine engine(db);
    auto out = engine.Evaluate(*p, mode);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_EQ(**out->GetRelation("unreached"),
              Relation::FromTuples(1, {{3}, {4}}));
  }
}

TEST(StratifiedTest, NegationOfEdbRelation) {
  Database db(3);
  ASSERT_TRUE(db.AddRelation("e", PathGraph(3)).ok());
  auto p = datalog::ParseProgram(
      "nonedge(X,Y) :- e(X,Z), e(W,Y), not e(X,Y).\n");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  datalog::DatalogEngine engine(db);
  auto out = engine.Evaluate(*p);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // Sources {0,1} x targets {1,2} minus edges {(0,1),(1,2)}.
  EXPECT_EQ(**out->GetRelation("nonedge"),
            Relation::FromTuples(2, {{0, 2}, {1, 1}}));
}

TEST(StratifiedTest, UnsafeNegationRejectedAtParse) {
  auto p = datalog::ParseProgram("p(X) :- q(X), not r(X,Y).\n");
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kTypeError);
}

TEST(StratifiedTest, ThreeStrata) {
  // win/lose on a game graph: lose(X) iff every move from X goes to a
  // winning position... classic non-stratified; use a layered variant:
  // a(X) base; b(X) = not a; c(X) = not b.
  Database db(4);
  ASSERT_TRUE(db.AddRelation("v", Relation::FromTuples(
                                      1, {{0}, {1}, {2}, {3}}))
                  .ok());
  ASSERT_TRUE(db.AddRelation("base", Relation::FromTuples(1, {{0}, {2}}))
                  .ok());
  auto p = datalog::ParseProgram(
      "a(X) :- base(X).\n"
      "b(X) :- v(X), not a(X).\n"
      "c(X) :- v(X), not b(X).\n");
  ASSERT_TRUE(p.ok());
  auto strata = datalog::Stratify(*p, db);
  ASSERT_TRUE(strata.ok());
  EXPECT_EQ(strata->at("c"), 2u);
  datalog::DatalogEngine engine(db);
  auto out = engine.Evaluate(*p);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(**out->GetRelation("b"), Relation::FromTuples(1, {{1}, {3}}));
  EXPECT_EQ(**out->GetRelation("c"), Relation::FromTuples(1, {{0}, {2}}));
}

TEST(StratifiedTest, ToStringPrintsNot) {
  auto p = datalog::ParseProgram("p(X) :- q(X), not r(X).\n");
  ASSERT_TRUE(p.ok());
  EXPECT_NE(p->ToString().find("not r("), std::string::npos);
  auto again = datalog::ParseProgram(p->ToString());
  ASSERT_TRUE(again.ok()) << p->ToString();
}

TEST(DatalogProgramTest, ToStringRoundTrips) {
  auto p = ParseProgram("tc(X,Y) :- e(X,Y), tc(Y,X).\nf(0).\n");
  ASSERT_TRUE(p.ok());
  auto again = ParseProgram(p->ToString());
  ASSERT_TRUE(again.ok()) << p->ToString();
  EXPECT_EQ(p->rules.size(), again->rules.size());
}

}  // namespace
}  // namespace datalog
}  // namespace bvq
