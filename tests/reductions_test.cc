#include <gtest/gtest.h>

#include "common/rng.h"
#include "datalog/datalog.h"
#include "eval/bounded_eval.h"
#include "eval/eso_eval.h"
#include "logic/analysis.h"
#include "logic/parser.h"
#include "reductions/path_systems.h"
#include "reductions/qbf.h"
#include "reductions/sat_to_eso.h"
#include "sat/solver.h"

namespace bvq {
namespace {

// --- Path Systems (Proposition 3.2) ------------------------------------------

TEST(PathSystemTest, TreeInstanceAccepts) {
  PathSystem ps = TreePathSystem(4);
  EXPECT_EQ(ps.num_elements, 7u);
  EXPECT_TRUE(ps.Accepts());
  EXPECT_EQ(ps.Reachable().size(), 7u);
}

TEST(PathSystemTest, UnreachableTargetRejects) {
  PathSystem ps = TreePathSystem(4);
  // Retarget to a fresh element with no derivation.
  ps.num_elements += 1;
  ps.t = Relation::FromTuples(1, {{static_cast<Value>(ps.num_elements - 1)}});
  EXPECT_FALSE(ps.Accepts());
}

TEST(PathSystemTest, DatalogCrossCheck) {
  Rng rng(7);
  auto program = datalog::ParseProgram(PathSystemDatalogProgram());
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  for (int trial = 0; trial < 20; ++trial) {
    PathSystem ps = RandomPathSystem(4 + rng.Below(8), 0.8, 2, 2, rng);
    Database db = ps.ToDatabase();  // engine holds a reference
    datalog::DatalogEngine engine(db);
    auto out = engine.Evaluate(*program);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    auto p = out->GetRelation("P");
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(**p, ps.Reachable());
    auto goal = out->GetRelation("Goal");
    ASSERT_TRUE(goal.ok());
    EXPECT_EQ(!(*goal)->empty(), ps.Accepts());
  }
}

TEST(PathSystemTest, Fo3FormulaFamilyIsLinearAndThreeVariable) {
  FormulaPtr phi = PathSystemSentence(10);
  EXPECT_LE(NumVariables(phi), 3u);
  const std::size_t s10 = phi->Size();
  const std::size_t s20 = PathSystemSentence(20)->Size();
  // Size grows linearly in the iteration count.
  EXPECT_EQ(s20 - s10, 10 * (PathSystemSentence(2)->Size() -
                             PathSystemSentence(1)->Size()));
}

TEST(PathSystemTest, Fo3ReductionMatchesSolver) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    PathSystem ps = RandomPathSystem(3 + rng.Below(5), 0.7, 1, 2, rng);
    Database db = ps.ToDatabase();
    BoundedEvaluator eval(db, 3);
    auto result = eval.Evaluate(PathSystemSentence(ps.num_elements));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    // The sentence is closed: satisfied by all assignments or none.
    EXPECT_TRUE(result->Empty() || result->IsFull());
    EXPECT_EQ(!result->Empty(), ps.Accepts()) << db.ToString();
  }
}

TEST(PathSystemTest, IterationCountMatters) {
  // With too few unfoldings the formula misses deep derivations.
  PathSystem ps = TreePathSystem(8);  // depth ~ 3 inferences on the spine
  Database db = ps.ToDatabase();
  BoundedEvaluator eval(db, 3);
  auto full = eval.Evaluate(PathSystemSentence(ps.num_elements));
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full->Empty());
  auto shallow = eval.Evaluate(PathSystemSentence(1));
  ASSERT_TRUE(shallow.ok());
  EXPECT_TRUE(shallow->Empty());
}

// --- QBF -> PFP^1 (Theorem 4.6) -----------------------------------------------

TEST(QbfTest, ParseAndSolve) {
  auto t = ParseQbf("A Y1 E Y2 : Y1 <-> Y2");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  auto r = SolveQbf(*t);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);

  auto f = ParseQbf("E Y1 A Y2 : Y1 <-> Y2");
  ASSERT_TRUE(f.ok());
  r = SolveQbf(*f);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
}

TEST(QbfTest, ParseErrors) {
  EXPECT_FALSE(ParseQbf("E Y1 Y1 & Y2").ok());          // missing ':'
  EXPECT_FALSE(ParseQbf("X Y1 : Y1").ok());             // bad quantifier
  EXPECT_FALSE(ParseQbf("E Y1 : Y1 & Y2").ok());        // unquantified Y2
  EXPECT_FALSE(ParseQbf("E Y1 : Y1(x1)").ok());         // non-propositional
}

TEST(QbfTest, FixedDatabaseShape) {
  Database b0 = QbfFixedDatabase();
  EXPECT_EQ(b0.domain_size(), 2u);
  EXPECT_EQ(**b0.GetRelation("P"), Relation::FromTuples(1, {{0}}));
}

TEST(QbfTest, ReductionUsesOneVariable) {
  auto qbf = ParseQbf("A Y1 E Y2 : Y1 <-> Y2");
  ASSERT_TRUE(qbf.ok());
  auto pfp = QbfToPfp(*qbf);
  ASSERT_TRUE(pfp.ok()) << pfp.status().ToString();
  EXPECT_EQ(NumVariables(*pfp), 1u);  // PFP^1!
  LanguageClass c = ClassifyLanguage(*pfp);
  EXPECT_TRUE(c.partial_fixpoint);
  EXPECT_FALSE(c.fixpoint);
}

TEST(QbfTest, ReductionIsLinearSize) {
  Rng rng(5);
  Qbf q8 = RandomQbf(8, 10, rng);
  Qbf q16 = RandomQbf(16, 10, rng);
  auto p8 = QbfToPfp(q8);
  auto p16 = QbfToPfp(q16);
  ASSERT_TRUE(p8.ok());
  ASSERT_TRUE(p16.ok());
  // Prefix handling adds a constant number of nodes per quantifier.
  EXPECT_LE((*p16)->Size(),
            (*p8)->Size() + 8 * 20 + (q16.matrix->Size() - q8.matrix->Size()));
}

TEST(QbfTest, ReductionAgreesWithSolverHandPicked) {
  const char* cases[] = {
      "E Y1 : Y1",
      "A Y1 : Y1",
      "E Y1 : ! Y1",
      "A Y1 : Y1 | ! Y1",
      "A Y1 E Y2 : Y1 <-> Y2",
      "E Y1 A Y2 : Y1 <-> Y2",
      "E Y1 E Y2 : Y1 & ! Y2",
      "A Y1 A Y2 : Y1 | ! Y1 | Y2",
      "A Y1 E Y2 A Y3 : (Y1 | Y2 | Y3) & (! Y1 | ! Y2 | ! Y3) | Y2 <-> Y2",
  };
  Database b0 = QbfFixedDatabase();
  for (const char* text : cases) {
    auto qbf = ParseQbf(text);
    ASSERT_TRUE(qbf.ok()) << text;
    auto expected = SolveQbf(*qbf);
    ASSERT_TRUE(expected.ok());
    auto pfp = QbfToPfp(*qbf);
    ASSERT_TRUE(pfp.ok()) << text;
    BoundedEvaluator eval(b0, 1);
    auto result = eval.Evaluate(*pfp);
    ASSERT_TRUE(result.ok()) << text << ": " << result.status().ToString();
    EXPECT_TRUE(result->Empty() || result->IsFull()) << text;
    EXPECT_EQ(!result->Empty(), *expected) << text;
  }
}

TEST(QbfTest, ReductionAgreesWithSolverRandom) {
  Rng rng(31);
  Database b0 = QbfFixedDatabase();
  for (int trial = 0; trial < 40; ++trial) {
    Qbf qbf = RandomQbf(2 + rng.Below(5), 2 + rng.Below(6), rng);
    auto expected = SolveQbf(qbf);
    ASSERT_TRUE(expected.ok());
    auto pfp = QbfToPfp(qbf);
    ASSERT_TRUE(pfp.ok());
    BoundedEvaluator eval(b0, 1);
    auto result = eval.Evaluate(*pfp);
    ASSERT_TRUE(result.ok()) << qbf.ToString();
    EXPECT_EQ(!result->Empty(), *expected) << qbf.ToString();
    // Floyd-mode cycle detection agrees too (Theorem 3.8 polynomial
    // space).
    BoundedEvalOptions floyd;
    floyd.pfp_cycle_detection = PfpCycleDetection::kFloyd;
    BoundedEvaluator eval_floyd(b0, 1, floyd);
    auto result_floyd = eval_floyd.Evaluate(*pfp);
    ASSERT_TRUE(result_floyd.ok());
    EXPECT_EQ(*result, *result_floyd) << qbf.ToString();
  }
}

// --- SAT -> ESO (Theorem 4.5) --------------------------------------------------

TEST(SatToEsoTest, ReductionShape) {
  auto phi = ParseFormula("(P1 | ! P2) & (P2 | P3)");
  ASSERT_TRUE(phi.ok());
  auto eso = PropositionalToEso(*phi);
  ASSERT_TRUE(eso.ok()) << eso.status().ToString();
  EXPECT_TRUE(ClassifyLanguage(*eso).eso);
  EXPECT_EQ(NumVariables(*eso), 0u);
}

TEST(SatToEsoTest, RejectsNonPropositional) {
  EXPECT_FALSE(PropositionalToEso(*ParseFormula("P(x1)")).ok());
  EXPECT_FALSE(
      PropositionalToEso(*ParseFormula("[lfp T(x1) . T(x1)](x1)")).ok());
}

TEST(SatToEsoTest, AgreesWithSatSolverOnRandomCnf) {
  Rng rng(2025);
  for (int trial = 0; trial < 30; ++trial) {
    sat::Cnf cnf;
    cnf.num_vars = 6;
    const std::size_t clauses = 10 + rng.Below(20);
    for (std::size_t c = 0; c < clauses; ++c) {
      sat::Clause clause;
      for (int j = 0; j < 3; ++j) {
        clause.push_back(
            sat::Lit(static_cast<int>(rng.Below(6)), rng.Bernoulli(0.5)));
      }
      cnf.AddClause(clause);
    }
    sat::Solver solver;
    const bool expected =
        solver.Solve(cnf).status == sat::SolveStatus::kSat;

    auto eso = PropositionalToEso(CnfToFormula(cnf));
    ASSERT_TRUE(eso.ok());
    // Theorem 4.5: the database does not matter; try two.
    for (Database db : {TrivialDatabase(), QbfFixedDatabase()}) {
      EsoEvaluator eval(db, 1);
      auto holds = eval.HoldsSentence(*eso);
      ASSERT_TRUE(holds.ok()) << holds.status().ToString();
      EXPECT_EQ(*holds, expected);
    }
  }
}

}  // namespace
}  // namespace bvq
