// Tests for the dependency-aware subformula memo layer (DESIGN.md,
// "Memoization & invariant hoisting"): FormulaIndex interning and
// dependency sets, memo invalidation under every binder kind, counter
// semantics, and byte-identical answers memo on vs. off across thread
// counts.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "db/generators.h"
#include "eval/bounded_eval.h"
#include "logic/analysis.h"
#include "logic/parser.h"

namespace bvq {
namespace {

Database PathDbWithLastP(std::size_t n) {
  Database db(n);
  EXPECT_TRUE(db.AddRelation("E", PathGraph(n)).ok());
  RelationBuilder p(1);
  Value last = static_cast<Value>(n - 1);
  p.Add(&last);
  EXPECT_TRUE(db.AddRelation("P", p.Build()).ok());
  return db;
}

AssignmentSet MustEval(const Database& db, std::size_t k,
                       const FormulaPtr& f, BoundedEvalOptions opts,
                       EvalStats* stats = nullptr) {
  BoundedEvaluator eval(db, k, opts);
  auto r = eval.Evaluate(f);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  if (stats != nullptr) *stats = eval.stats();
  return *r;
}

// --- FormulaIndex -----------------------------------------------------------

TEST(FormulaIndexTest, IdenticalSubtreesShareAClass) {
  auto f = ParseFormula("E(x1,x2) & (E(x1,x2) | P(x1))");
  ASSERT_TRUE(f.ok());
  FormulaIndex index(*f);
  const auto& conj = static_cast<const BinaryFormula&>(**f);
  const auto& disj = static_cast<const BinaryFormula&>(*conj.rhs());
  EXPECT_EQ(index.Facts(conj.lhs().get()).cls,
            index.Facts(disj.lhs().get()).cls);
  EXPECT_NE(index.Facts(conj.lhs().get()).cls,
            index.Facts(disj.rhs().get()).cls);
  EXPECT_EQ(index.StructuralHash(index.Facts(conj.lhs().get()).cls),
            index.StructuralHash(index.Facts(disj.lhs().get()).cls));
}

TEST(FormulaIndexTest, FreeRelVarsStopAtBinders) {
  auto f = ParseFormula(
      "[lfp S(x1) . P(x1) | exists x2 . (E(x1,x2) & S(x2))](x1)");
  ASSERT_TRUE(f.ok());
  FormulaIndex index(*f);
  // The root binds S, so only the database names E and P remain free.
  const auto& root_free = index.FreeRelVars(index.Facts(f->get()).cls);
  std::vector<std::size_t> expect_root = {index.PredId("P"),
                                          index.PredId("E")};
  std::sort(expect_root.begin(), expect_root.end());
  EXPECT_EQ(root_free, expect_root);
  // The body sees S free as well.
  const auto& fp = static_cast<const FixpointFormula&>(**f);
  const auto& body_free = index.FreeRelVars(index.Facts(fp.body().get()).cls);
  EXPECT_EQ(body_free.size(), 3u);
  EXPECT_TRUE(std::find(body_free.begin(), body_free.end(),
                        index.PredId("S")) != body_free.end());
}

TEST(FormulaIndexTest, PredIdRoundTripAndUnknown) {
  auto f = ParseFormula("E(x1,x2) & P(x1)");
  ASSERT_TRUE(f.ok());
  FormulaIndex index(*f);
  ASSERT_NE(index.PredId("E"), FormulaIndex::kNoPred);
  EXPECT_EQ(index.PredName(index.PredId("E")), "E");
  EXPECT_EQ(index.PredId("NoSuchRelation"), FormulaIndex::kNoPred);
  EXPECT_EQ(index.num_preds(), 2u);
}

// --- counters ---------------------------------------------------------------

TEST(MemoEvalTest, InvariantSubtreeIsHoistedOnce) {
  Database db = PathDbWithLastP(8);
  // The forall/exists conjunct never mentions T, so after the first
  // iteration every re-request of it is a memo hit inside a live loop.
  auto f = ParseFormula(
      "[lfp T(x1) . P(x1) | ((exists x2 . (E(x1,x2) & T(x2))) & "
      "(forall x2 . exists x3 . (E(x2,x3) | x2 = x3)))](x1)");
  ASSERT_TRUE(f.ok());
  EvalStats on_stats;
  AssignmentSet on = MustEval(db, 3, *f, {}, &on_stats);
  EXPECT_GT(on_stats.memo_hits, 0u);
  EXPECT_GT(on_stats.memo_misses, 0u);
  EXPECT_GT(on_stats.invariant_hoists, 0u);
  EXPECT_GT(on_stats.iterate_copies_avoided, 0u);

  BoundedEvalOptions off;
  off.memo = false;
  EvalStats off_stats;
  AssignmentSet off_answer = MustEval(db, 3, *f, off, &off_stats);
  EXPECT_EQ(off_stats.memo_hits, 0u);
  EXPECT_EQ(off_stats.memo_misses, 0u);
  EXPECT_EQ(off_stats.invariant_hoists, 0u);
  // Iterate sharing is structural, not memo-gated.
  EXPECT_GT(off_stats.iterate_copies_avoided, 0u);
  EXPECT_EQ(on, off_answer);
}

// --- invalidation correctness ----------------------------------------------

struct MemoWorkload {
  const char* name;
  const char* formula;
};

// Each formula repeats subtrees that depend on a recursion variable or
// witness, so a memo that failed to invalidate on binding changes would
// return stale cubes and change the answer.
const MemoWorkload kWorkloads[] = {
    {"nested_alternating_lfp_gfp",
     "[gfp G(x1) . (exists x2 . (E(x1,x2) & G(x2))) & "
     "[lfp T(x2) . P(x2) | exists x3 . (E(x2,x3) & T(x3))](x1)](x1)"},
    {"same_body_under_lfp_and_gfp",
     "[lfp S(x1) . P(x1) | exists x2 . (E(x1,x2) & S(x2))](x1) | "
     "[gfp S(x1) . P(x1) | exists x2 . (E(x1,x2) & S(x2))](x1)"},
    {"ifp_with_repeated_dependent_subtree",
     "[ifp I(x1) . P(x1) | ((exists x2 . (E(x1,x2) & I(x2))) & "
     "!(!(exists x2 . (E(x1,x2) & I(x2)))))](x1)"},
    {"pfp_with_invariant_and_dependent_parts",
     "[pfp F(x1) . P(x1) | ((exists x2 . (E(x1,x2) & F(x2))) & "
     "(forall x2 . exists x3 . (E(x2,x3) | x2 = x3)))](x1)"},
    {"so_exists_reuses_witness_subtree",
     "exists2 S/1 . (S(x1) & !(S(x2)) & (S(x1) | P(x1)))"},
};

TEST(MemoEvalTest, ByteIdenticalOnVsOffAcrossThreads) {
  Database db = PathDbWithLastP(6);
  for (const MemoWorkload& w : kWorkloads) {
    auto f = ParseFormula(w.formula);
    ASSERT_TRUE(f.ok()) << w.name << ": " << f.status().ToString();
    BoundedEvalOptions base;
    base.memo = false;
    base.num_threads = 1;
    AssignmentSet expected = MustEval(db, 3, *f, base);
    for (bool memo : {true, false}) {
      for (std::size_t threads : {1u, 2u, 4u, 8u}) {
        BoundedEvalOptions opts;
        opts.memo = memo;
        opts.num_threads = threads;
        AssignmentSet got = MustEval(db, 3, *f, opts);
        EXPECT_EQ(got, expected)
            << w.name << " differs with memo=" << memo
            << " threads=" << threads;
      }
    }
  }
}

TEST(MemoEvalTest, ByteIdenticalUnderEveryStrategyAndPfpMode) {
  Database db = PathDbWithLastP(6);
  for (const MemoWorkload& w : kWorkloads) {
    auto f = ParseFormula(w.formula);
    ASSERT_TRUE(f.ok()) << w.name;
    BoundedEvalOptions base;
    base.memo = false;
    AssignmentSet expected = MustEval(db, 3, *f, base);
    for (bool memo : {true, false}) {
      for (auto strategy : {FixpointStrategy::kNaiveNested,
                            FixpointStrategy::kMonotoneReuse}) {
        for (auto pfp : {PfpCycleDetection::kHashHistory,
                         PfpCycleDetection::kFloyd}) {
          BoundedEvalOptions opts;
          opts.memo = memo;
          opts.fixpoint_strategy = strategy;
          opts.pfp_cycle_detection = pfp;
          AssignmentSet got = MustEval(db, 3, *f, opts);
          EXPECT_EQ(got, expected) << w.name << " memo=" << memo;
        }
      }
    }
  }
}

TEST(MemoEvalTest, RestoringAnOuterBindingRevalidatesItsEntries) {
  // S(x1) occurs both under the inner rebinding of S and outside it; the
  // outer occurrences must never see the inner iterate. With n = 5 and P
  // = {4}, the outer lfp is reachability-to-4 and the inner gfp (over the
  // same name) is empty, so a stale memo would drain the disjunct.
  Database db = PathDbWithLastP(5);
  auto f = ParseFormula(
      "[lfp S(x1) . P(x1) | (exists x2 . (E(x1,x2) & S(x2))) | "
      "([gfp S(x1) . S(x1) & exists x2 . (E(x1,x2) & S(x2))](x1) & "
      "S(x1))](x1)");
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  BoundedEvalOptions off;
  off.memo = false;
  EXPECT_EQ(MustEval(db, 3, *f, {}), MustEval(db, 3, *f, off));
}

TEST(MemoEvalTest, EnvironmentBindingsGetVersions) {
  Database db(3);
  AssignmentSet cube = AssignmentSet::VarEqualsConst(3, 2, 0, 1);
  std::map<std::string, RelVarBinding> env;
  env.emplace("S", RelVarBinding{cube, {0}});
  // S is requested twice: the second occurrence is a memo hit against the
  // env binding's version, and must still see the bound cube.
  auto f = ParseFormula("S(x2) & S(x2)");
  ASSERT_TRUE(f.ok());
  for (bool memo : {true, false}) {
    BoundedEvalOptions opts;
    opts.memo = memo;
    BoundedEvaluator eval(db, 2, opts);
    auto r = eval.EvaluateWithEnv(*f, env);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(*r, AssignmentSet::VarEqualsConst(3, 2, 1, 1)) << memo;
  }
}

TEST(MemoEvalTest, EvaluatorInstanceIsReusableAcrossFormulas) {
  // The memo, index, and caches are rebuilt per Evaluate call; a second
  // formula sharing subtree shapes with the first must not see its slots.
  Database db = PathDbWithLastP(5);
  BoundedEvaluator eval(db, 3);
  auto f1 = ParseFormula("exists x2 . E(x1,x2)");
  auto f2 = ParseFormula("exists x2 . E(x2,x1)");
  ASSERT_TRUE(f1.ok() && f2.ok());
  auto r1 = eval.Evaluate(*f1);
  auto r2 = eval.Evaluate(*f2);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_NE(*r1, *r2);
  auto r1_again = eval.Evaluate(*f1);
  ASSERT_TRUE(r1_again.ok());
  EXPECT_EQ(*r1, *r1_again);
}

}  // namespace
}  // namespace bvq
