#include <gtest/gtest.h>

#include "common/rng.h"
#include "db/generators.h"
#include "eval/bounded_eval.h"
#include "eval/certificate.h"
#include "eval/reference_eval.h"
#include "logic/analysis.h"
#include "logic/nnf.h"
#include "logic/parser.h"
#include "logic/random_formula.h"

namespace bvq {
namespace {

// Tests for IFP^k, the inflationary-fixpoint extension Section 3.2 of the
// paper singles out: equal to FP in expressive power [GS86], but the
// Theorem 3.5 certificate technique does not apply, leaving the PSPACE
// bound inherited from PFP^k.

Database GraphDb(std::size_t n, const Relation& edges) {
  Database db(n);
  Status s = db.AddRelation("E", edges);
  EXPECT_TRUE(s.ok());
  return db;
}

TEST(IfpTest, ParserRoundTrip) {
  auto f = ParseFormula("[ifp X(x1) . !(X(x1)) & E(x1,x1)](x2)");
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  const auto& fp = static_cast<const FixpointFormula&>(**f);
  EXPECT_EQ(fp.op(), FixpointKind::kInflationary);
  auto printed = FormulaToString(*f);
  auto again = ParseFormula(printed);
  ASSERT_TRUE(again.ok()) << printed;
  EXPECT_EQ(FormulaToString(*again), printed);
}

TEST(IfpTest, WellFormedWithoutPositivity) {
  Database db = GraphDb(2, Relation(2));
  auto f = ParseFormula("[ifp X(x1) . !(X(x1))](x1)");
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(CheckWellFormed(*f, db, 1).ok());
  LanguageClass c = ClassifyLanguage(*f);
  EXPECT_FALSE(c.fixpoint);          // not FP syntax
  EXPECT_TRUE(c.partial_fixpoint);   // evaluable in the PFP regime
}

TEST(IfpTest, NonMonotoneBodyConverges) {
  // ifp X . !X: stage 1 adds everything (phi(empty) = D); then the union
  // keeps it at D. (The pfp of the same body cycles and is empty.)
  Database db(3);
  BoundedEvaluator eval(db, 1);
  auto ifp = eval.Evaluate(*ParseFormula("[ifp X(x1) . !(X(x1))](x1)"));
  ASSERT_TRUE(ifp.ok()) << ifp.status().ToString();
  EXPECT_TRUE(ifp->IsFull());
  auto pfp = eval.Evaluate(*ParseFormula("[pfp X(x1) . !(X(x1))](x1)"));
  ASSERT_TRUE(pfp.ok());
  EXPECT_TRUE(pfp->Empty());
}

TEST(IfpTest, CoincidesWithLfpOnPositiveBodies) {
  Rng rng(271);
  const char* lfp_text =
      "[lfp T(x1,x2) . E(x1,x2) | exists x3 . (E(x1,x3) & exists x1 . "
      "(x1 = x3 & T(x1,x2)))](x1,x2)";
  const char* ifp_text =
      "[ifp T(x1,x2) . E(x1,x2) | exists x3 . (E(x1,x3) & exists x1 . "
      "(x1 = x3 & T(x1,x2)))](x1,x2)";
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 3 + rng.Below(4);
    Database db = GraphDb(n, RandomGraph(n, 0.3, rng));
    BoundedEvaluator eval(db, 3);
    auto a = eval.Evaluate(*ParseFormula(lfp_text));
    auto b = eval.Evaluate(*ParseFormula(ifp_text));
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b);
  }
}

TEST(IfpTest, ExpressesNonMonotoneInduction) {
  // "Distance parity" needs the previous stage negatively: a node enters
  // when it has an edge from a node already in X but is not itself in X
  // yet... as a simple smoke: X grows along a path one stage at a time.
  Database db = GraphDb(5, PathGraph(5));
  ASSERT_TRUE(db.AddRelation("S", Relation::FromTuples(1, {{0}})).ok());
  auto f = ParseFormula(
      "[ifp X(x1) . S(x1) | exists x2 . (E(x2,x1) & X(x2) & !(X(x1)))](x1)");
  ASSERT_TRUE(f.ok());
  BoundedEvaluator eval(db, 2);
  auto r = eval.Evaluate(*f);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->ToRelation({0}).size(), 5u);  // everything reachable
}

TEST(IfpTest, MatchesReferenceOnRandomFormulas) {
  Rng rng(999);
  RandomFormulaOptions opts;
  opts.num_vars = 2;
  opts.max_size = 14;
  opts.predicates = {{"E", 2}, {"P", 1}};
  opts.allow_ifp = true;
  opts.allow_fixpoints = true;
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 2 + rng.Below(2);
    Database db(n);
    ASSERT_TRUE(db.AddRelation("E", RandomRelation(n, 2, 0.4, rng)).ok());
    ASSERT_TRUE(db.AddRelation("P", RandomRelation(n, 1, 0.5, rng)).ok());
    FormulaPtr f = RandomFormula(opts, rng);

    ReferenceEvaluator ref(db, 2);
    auto expected = ref.SatisfyingAssignments(f);
    ASSERT_TRUE(expected.ok()) << FormulaToString(f);

    BoundedEvaluator eval(db, 2);
    auto actual = eval.Evaluate(f);
    ASSERT_TRUE(actual.ok()) << FormulaToString(f);
    EXPECT_EQ(actual->ToRelation({0, 1}), *expected)
        << FormulaToString(f) << "\n"
        << db.ToString();
  }
}

TEST(IfpTest, NnfKeepsNegationOutside) {
  auto f = ParseFormula("!([ifp X(x1) . !(X(x1))](x1))");
  auto nnf = NegationNormalForm(*f);
  ASSERT_TRUE(nnf.ok());
  EXPECT_TRUE(IsNegationNormalForm(*nnf));
  EXPECT_EQ((*nnf)->kind(), FormulaKind::kNot);
}

TEST(IfpTest, CertificatesRejectIfp) {
  Database db(2);
  CertificateSystem sys(db, 1);
  auto f = ParseFormula("[ifp X(x1) . X(x1) | true](x1)");
  ASSERT_TRUE(f.ok());
  auto r = sys.Generate(*f);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

TEST(IfpTest, IfpOfDecreasingBodyIsFirstStage) {
  // phi(X) = P & !X: stage1 = P; stage2 = P  union (P & !P) = P. Limit P.
  Database db(4);
  ASSERT_TRUE(db.AddRelation("P", Relation::FromTuples(1, {{1}, {2}})).ok());
  BoundedEvaluator eval(db, 1);
  auto r = eval.Evaluate(*ParseFormula("[ifp X(x1) . P(x1) & !(X(x1))](x1)"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ToRelation({0}), Relation::FromTuples(1, {{1}, {2}}));
}

TEST(IfpTest, ParametersSupported) {
  // X depends on parameter x2: ifp X(x1). x1 = x2.
  Database db(3);
  BoundedEvaluator eval(db, 2);
  auto r = eval.Evaluate(*ParseFormula("[ifp X(x1) . x1 = x2](x1)"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, AssignmentSet::Equality(3, 2, 0, 1));
}

}  // namespace
}  // namespace bvq
