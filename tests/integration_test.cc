// Cross-module integration tests: whole pipelines through the umbrella
// header, join-tree invariants, and engine agreement on composed
// workloads.

#include <gtest/gtest.h>

#include <set>

#include "bvq.h"

namespace bvq {
namespace {

TEST(UmbrellaHeaderTest, EndToEndPipeline) {
  // Build a database, parse a query, plan, rewrite, evaluate three ways.
  Rng rng(1);
  Database db(8);
  ASSERT_TRUE(db.AddRelation("R", RandomRelation(8, 2, 0.3, rng)).ok());
  auto cq = optimizer::ParseCq("Q(X) :- R(X,Y), R(Y,Z), R(Z,W).");
  ASSERT_TRUE(cq.ok());

  auto naive = optimizer::EvaluateCqNaive(*cq, db);
  ASSERT_TRUE(naive.ok());

  auto plan = optimizer::ExactMinWidthOrder(*cq);
  ASSERT_TRUE(plan.ok());
  auto elim = optimizer::EvaluateByElimination(*cq, plan->order, db);
  ASSERT_TRUE(elim.ok());
  EXPECT_EQ(*naive, *elim);

  auto rewrite = optimizer::RewriteWithFewVariables(*cq, plan->order);
  ASSERT_TRUE(rewrite.ok());
  BoundedEvaluator eval(db, rewrite->num_vars);
  auto bounded = eval.EvaluateQuery(rewrite->query);
  ASSERT_TRUE(bounded.ok());
  EXPECT_EQ(*naive, *bounded);

  auto yan = optimizer::EvaluateYannakakis(*cq, db);
  ASSERT_TRUE(yan.ok());
  EXPECT_EQ(*naive, *yan);
}

TEST(JoinTreeInvariantTest, ConnectednessProperty) {
  // In a GYO join tree, the atoms containing any given variable form a
  // connected subtree (the property Yannakakis correctness rests on).
  Rng rng(77);
  int acyclic_seen = 0;
  for (int trial = 0; trial < 60; ++trial) {
    optimizer::ConjunctiveQuery cq =
        optimizer::RandomCq(5, 4, 1, "R", rng);
    auto tree = optimizer::GyoJoinTree(cq);
    if (!tree.ok()) continue;  // cyclic
    ++acyclic_seen;
    for (std::size_t v = 0; v < cq.num_vars; ++v) {
      // Atoms containing v.
      std::vector<std::size_t> holders;
      for (std::size_t i = 0; i < cq.atoms.size(); ++i) {
        for (std::size_t u : cq.atoms[i].vars) {
          if (u == v) {
            holders.push_back(i);
            break;
          }
        }
      }
      if (holders.size() <= 1) continue;
      // Walk each holder to the root; the paths must meet inside the
      // holder set before leaving it... equivalently: climbing from any
      // holder, the chain of holders containing v must be contiguous.
      // Check pairwise: the tree-path between two holders only visits
      // atoms containing v. Use parent pointers to compute ancestors.
      auto ancestors = [&](std::size_t node) {
        std::vector<std::size_t> path{node};
        std::ptrdiff_t p = tree->parent[node];
        while (p >= 0) {
          path.push_back(static_cast<std::size_t>(p));
          p = tree->parent[static_cast<std::size_t>(p)];
        }
        return path;
      };
      std::set<std::size_t> holder_set(holders.begin(), holders.end());
      for (std::size_t a : holders) {
        for (std::size_t b : holders) {
          if (a >= b) continue;
          // Lowest common ancestor by path intersection.
          auto pa = ancestors(a);
          auto pb = ancestors(b);
          std::set<std::size_t> sa(pa.begin(), pa.end());
          std::size_t lca = pb.back();
          for (std::size_t x : pb) {
            if (sa.count(x)) {
              lca = x;
              break;
            }
          }
          auto check_path = [&](const std::vector<std::size_t>& path) {
            for (std::size_t x : path) {
              if (x == lca) break;
              EXPECT_TRUE(holder_set.count(x))
                  << "connectedness violated for variable " << v << " in "
                  << cq.ToString();
            }
          };
          check_path(pa);
          check_path(pb);
          EXPECT_TRUE(holder_set.count(lca)) << cq.ToString();
        }
      }
    }
  }
  EXPECT_GT(acyclic_seen, 5);
}

TEST(IntegrationTest, MuCalculusToCertificates) {
  // Translate a mu-calculus property to FP^2, normalize, certify, verify:
  // the full Theorem 3.5 pipeline applied to the paper's model-checking
  // application.
  mucalc::KripkeStructure k = mucalc::MutexProtocol();
  auto property = mucalc::CtlAG(
      mucalc::MuNot(mucalc::MuAnd(mucalc::MuName("c1"),
                                  mucalc::MuName("c2"))));
  auto fp2 = mucalc::TranslateToFp2(property);
  ASSERT_TRUE(fp2.ok());
  auto nnf = NegationNormalForm(*fp2);
  ASSERT_TRUE(nnf.ok());

  Database db = k.ToDatabase();
  CertificateSystem sys(db, 2);
  auto cert = sys.Generate(*nnf);
  ASSERT_TRUE(cert.ok()) << cert.status().ToString();
  auto verified = sys.Verify(*nnf, *cert);
  ASSERT_TRUE(verified.ok());

  mucalc::ModelChecker mc(k);
  auto direct = mc.CheckDirect(property);
  ASSERT_TRUE(direct.ok());
  for (std::size_t s = 0; s < k.num_states(); ++s) {
    EXPECT_EQ(direct->Test(s),
              verified->TestAssignment({static_cast<Value>(s), 0}))
        << s;
  }
}

TEST(IntegrationTest, TwoVersusThreeVariablesOnCycles) {
  // The classic finite-model-theory example of why the k in FO^k matters:
  // the 6-cycle and two disjoint triangles are FO^2-equivalent (two
  // pebbles cannot measure cycle lengths) but FO^3 tells them apart
  // (there is a triangle formula). The pebble game must see both sides.
  Database c6(6);
  ASSERT_TRUE(c6.AddRelation("E", CycleGraph(6)).ok());
  Database two_c3(6);
  RelationBuilder e(2);
  for (Value i = 0; i < 3; ++i) {
    Value a[2] = {i, static_cast<Value>((i + 1) % 3)};
    e.Add(a);
    Value b[2] = {static_cast<Value>(3 + i),
                  static_cast<Value>(3 + (i + 1) % 3)};
    e.Add(b);
  }
  ASSERT_TRUE(two_c3.AddRelation("E", e.Build()).ok());

  auto two = PebbleGameEquivalence(c6, two_c3, 2);
  ASSERT_TRUE(two.ok());
  EXPECT_TRUE(two->equivalent);
  auto three = PebbleGameEquivalence(c6, two_c3, 3);
  ASSERT_TRUE(three.ok());
  EXPECT_FALSE(three->equivalent);

  // The FO^3 witness: a directed triangle exists in 2xC3 only.
  auto triangle = ParseFormula(
      "exists x1 . exists x2 . exists x3 . "
      "(E(x1,x2) & E(x2,x3) & E(x3,x1))");
  BoundedEvaluator ea(c6, 3), eb(two_c3, 3);
  EXPECT_TRUE((*ea.Evaluate(*triangle)).Empty());
  EXPECT_FALSE((*eb.Evaluate(*triangle)).Empty());

  // And FO^2 really cannot: random FO^2 sentences agree.
  Rng rng(606060);
  RandomFormulaOptions opts;
  opts.num_vars = 2;
  opts.max_size = 16;
  opts.predicates = {{"E", 2}};
  BoundedEvaluator fa(c6, 2), fb(two_c3, 2);
  for (int s = 0; s < 40; ++s) {
    FormulaPtr f = RandomFormula(opts, rng);
    auto ra = fa.Evaluate(f);
    auto rb = fb.Evaluate(f);
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rb.ok());
    EXPECT_EQ(ra->Empty(), rb->Empty()) << FormulaToString(f);
    EXPECT_EQ(ra->IsFull(), rb->IsFull()) << FormulaToString(f);
  }
}

}  // namespace
}  // namespace bvq
