#include <gtest/gtest.h>

#include "common/rng.h"
#include "db/generators.h"
#include "eval/bounded_eval.h"
#include "eval/eso_eval.h"
#include "eval/reference_eval.h"
#include "logic/analysis.h"
#include "logic/builder.h"
#include "logic/parser.h"

namespace bvq {
namespace {

Database GraphDb(std::size_t n, const Relation& edges) {
  Database db(n);
  Status s = db.AddRelation("E", edges);
  EXPECT_TRUE(s.ok());
  return db;
}

// 2-colorability of a graph in ESO^2: exists a set S such that every edge
// crosses the cut.
FormulaPtr TwoColoring() {
  return *ParseFormula(
      "exists2 S/1 . forall x1 . forall x2 . "
      "(E(x1,x2) -> (S(x1) & !(S(x2)) | !(S(x1)) & S(x2)))");
}

TEST(EsoEvalTest, TwoColorableEvenCycle) {
  Database db = GraphDb(4, CycleGraph(4));
  EsoEvaluator eval(db, 2);
  EsoWitness witness;
  auto r = eval.HoldsSentence(TwoColoring(), &witness);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(*r);
  // The witness must be a genuine 2-coloring.
  ASSERT_TRUE(witness.count("S"));
  const Relation& s = witness.at("S");
  const Relation& e = **db.GetRelation("E");
  e.ForEach([&](const Value* t) {
    EXPECT_NE(s.Contains(Tuple{t[0]}), s.Contains(Tuple{t[1]}));
  });
}

TEST(EsoEvalTest, OddCycleNotTwoColorable) {
  Database db = GraphDb(5, CycleGraph(5));
  EsoEvaluator eval(db, 2);
  auto r = eval.HoldsSentence(TwoColoring());
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
}

TEST(EsoEvalTest, AgreesWithBruteForceEnumeration) {
  Rng rng(314);
  FormulaPtr queries[] = {
      TwoColoring(),
      *ParseFormula("exists2 S/1 . forall x1 . (S(x1) -> P(x1))"),
      *ParseFormula(
          "exists2 S/1 . (exists x1 . S(x1)) & forall x1 . "
          "(S(x1) -> exists x2 . (E(x1,x2) & S(x2)))"),
      *ParseFormula("exists2 S/2 . forall x1 . exists x2 . S(x1,x2) & "
                    "!(S(x2,x1))"),
  };
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t n = 2 + rng.Below(2);
    Database db(n);
    ASSERT_TRUE(db.AddRelation("E", RandomRelation(n, 2, 0.4, rng)).ok());
    ASSERT_TRUE(db.AddRelation("P", RandomRelation(n, 1, 0.5, rng)).ok());
    for (const FormulaPtr& f : queries) {
      ReferenceEvaluator ref(db, 2);
      auto expected = ref.SatisfyingAssignments(f);
      ASSERT_TRUE(expected.ok()) << expected.status().ToString();
      EsoEvaluator eval(db, 2);
      auto actual = eval.Evaluate(f);
      ASSERT_TRUE(actual.ok()) << actual.status().ToString();
      EXPECT_EQ(actual->ToRelation({0, 1}), *expected)
          << FormulaToString(f) << "\n"
          << db.ToString();
    }
  }
}

TEST(EsoEvalTest, FreeVariablesInEsoQuery) {
  // S must contain x1 and exclude x2: satisfiable iff x1 != x2.
  Database db(3);
  EsoEvaluator eval(db, 2);
  auto f = ParseFormula("exists2 S/1 . S(x1) & !(S(x2))");
  auto set = eval.Evaluate(*f);
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->Count(), 6u);  // 9 assignments minus 3 diagonal
  EXPECT_FALSE(set->TestAssignment({1, 1}));
  EXPECT_TRUE(set->TestAssignment({1, 2}));
}

TEST(EsoEvalTest, RejectsNegativeSoQuantifier) {
  Database db(2);
  EsoEvaluator eval(db, 1);
  auto f = ParseFormula("!(exists2 S/1 . S(x1))");
  auto r = eval.HoldsSentence(*f);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

TEST(EsoEvalTest, RejectsFixpoints) {
  Database db(2);
  EsoEvaluator eval(db, 1);
  auto f = ParseFormula("exists2 S/1 . [lfp T(x1) . T(x1)](x1)");
  EXPECT_FALSE(eval.HoldsSentence(*f).ok());
}

TEST(EsoEvalTest, RejectsShadowingDatabaseRelation) {
  Database db = GraphDb(2, Relation(2));
  EsoEvaluator eval(db, 2);
  auto f = ParseFormula("exists2 E/2 . E(x1,x2)");
  auto r = eval.HoldsSentence(*f);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

TEST(EsoEvalTest, HighArityRelationStaysPolynomial) {
  // A 6-ary quantified relation would have n^6 cells; the grounding must
  // only materialize the referenced ones (Lemma 3.6's insight).
  Database db = GraphDb(4, CycleGraph(4));
  EsoEvaluator eval(db, 2);
  auto f = ParseFormula(
      "exists2 S/6 . forall x1 . forall x2 . "
      "(E(x1,x2) -> S(x1,x2,x1,x2,x1,x2)) & "
      "!(S(x1,x1,x1,x1,x1,x1))");
  auto r = eval.HoldsSentence(*f);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(*r);
  // Referenced cells: at most 2 patterns * 16 assignments, far below 4^6.
  EXPECT_LE(eval.stats().so_cells, 32u);
}

TEST(EsoEvalTest, UnreferencedSoRelationGetsEmptyWitness) {
  // U is quantified but never mentioned: the witness must still report it
  // (as the empty relation of its declared arity), not omit it.
  Database db(3);
  ASSERT_TRUE(db.AddRelation("P", RelationBuilder(1).Build()).ok());
  EsoEvaluator eval(db, 1);
  auto f = ParseFormula("exists2 S/1 . exists2 U/2 . (S(x1) | !(S(x1)))");
  EsoWitness witness;
  auto r = eval.HoldsSentence(*f, &witness);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(*r);
  ASSERT_TRUE(witness.count("S"));
  ASSERT_TRUE(witness.count("U"));
  EXPECT_EQ(witness.at("U").arity(), 2u);
  EXPECT_EQ(witness.at("U").size(), 0u);
}

TEST(EsoEvalTest, IncrementalMatchesScratch) {
  FormulaPtr queries[] = {
      TwoColoring(),
      *ParseFormula("exists2 S/1 . S(x1) & !(S(x2))"),
      *ParseFormula("exists2 S/1 . (exists x1 . S(x1)) & forall x1 . "
                    "(S(x1) -> exists x2 . (E(x1,x2) & S(x2)))"),
  };
  for (std::size_t n : {3u, 5u}) {
    Database db = GraphDb(n, CycleGraph(n));
    for (const FormulaPtr& f : queries) {
      EsoEvalOptions inc_opts;
      inc_opts.incremental = true;
      EsoEvaluator inc(db, 2, inc_opts);
      auto a = inc.Evaluate(f);
      ASSERT_TRUE(a.ok()) << a.status().ToString();
      EsoEvalOptions scratch_opts;
      scratch_opts.incremental = false;
      EsoEvaluator scratch(db, 2, scratch_opts);
      auto b = scratch.Evaluate(f);
      ASSERT_TRUE(b.ok()) << b.status().ToString();
      EXPECT_EQ(*a, *b) << FormulaToString(f) << " n=" << n;
    }
  }
}

TEST(EsoEvalTest, SweepStatsDistinguishPaths) {
  Database db = GraphDb(3, CycleGraph(3));
  auto f = ParseFormula("exists2 S/1 . S(x1) & !(S(x2))");

  EsoEvalOptions inc_opts;
  inc_opts.incremental = true;
  EsoEvaluator inc(db, 2, inc_opts);
  ASSERT_TRUE(inc.Evaluate(*f).ok());
  EXPECT_EQ(inc.stats().sat_calls, 9u);  // n^k = 3^2
  EXPECT_EQ(inc.stats().groundings, 1u);
  EXPECT_EQ(inc.stats().solver.solve_calls, 9u);

  EsoEvalOptions scratch_opts;
  scratch_opts.incremental = false;
  EsoEvaluator scratch(db, 2, scratch_opts);
  ASSERT_TRUE(scratch.Evaluate(*f).ok());
  EXPECT_EQ(scratch.stats().sat_calls, 9u);
  EXPECT_EQ(scratch.stats().groundings, 9u);
}

// --- Lemma 3.6 arity reduction ----------------------------------------------

TEST(EsoArityReduceTest, ReducesArities) {
  auto f = ParseFormula(
      "exists2 S/4 . S(x1,x1,x2,x2) & !(S(x1,x2,x1,x2))");
  auto reduced = EsoArityReduce(*f, 2);
  ASSERT_TRUE(reduced.ok()) << reduced.status().ToString();
  // Every second-order quantifier in the result has arity <= 2.
  FormulaPtr g = *reduced;
  while (g->kind() == FormulaKind::kSecondOrderExists) {
    const auto& so = static_cast<const SoExistsFormula&>(*g);
    EXPECT_LE(so.arity(), 2u);
    g = so.body();
  }
  LanguageClass c = ClassifyLanguage(*reduced);
  EXPECT_TRUE(c.eso);
}

TEST(EsoArityReduceTest, PreservesSemantics) {
  // Check equivalence against brute-force enumeration on tiny databases.
  Rng rng(2718);
  FormulaPtr queries[] = {
      *ParseFormula("exists2 S/3 . S(x1,x2,x1) & !(S(x2,x1,x2))"),
      *ParseFormula(
          "exists2 S/4 . forall x1 . exists x2 . S(x1,x1,x2,x2) & "
          "(S(x1,x2,x1,x2) -> E(x1,x2))"),
      *ParseFormula("exists2 S/2 . forall x1 . S(x1,x1)"),
  };
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t n = 2;
    Database db(n);
    ASSERT_TRUE(db.AddRelation("E", RandomRelation(n, 2, 0.5, rng)).ok());
    for (const FormulaPtr& f : queries) {
      auto reduced = EsoArityReduce(f, 2);
      ASSERT_TRUE(reduced.ok()) << reduced.status().ToString();
      // Evaluate both through the SAT pipeline (handles high arities) and
      // compare; additionally cross-check the original against the
      // reference enumerator where feasible.
      EsoEvaluator eval(db, 2);
      auto a = eval.Evaluate(f);
      ASSERT_TRUE(a.ok());
      auto b = eval.Evaluate(*reduced);
      ASSERT_TRUE(b.ok()) << b.status().ToString();
      EXPECT_EQ(*a, *b) << FormulaToString(f);
    }
  }
}

TEST(EsoArityReduceTest, RejectsNonPrenex) {
  auto f = ParseFormula("[lfp T(x1) . T(x1)](x1)");
  EXPECT_FALSE(EsoArityReduce(*f, 1).ok());
}

TEST(EsoEvalStatsTest, ReportsCnfSize) {
  Database db = GraphDb(4, CycleGraph(4));
  EsoEvaluator eval(db, 2);
  ASSERT_TRUE(eval.HoldsSentence(TwoColoring()).ok());
  EXPECT_GT(eval.stats().cnf_vars, 0u);
  EXPECT_GT(eval.stats().cnf_clauses, 0u);
  EXPECT_EQ(eval.stats().so_cells, 4u);  // one per node
}

}  // namespace
}  // namespace bvq
