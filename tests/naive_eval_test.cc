#include <gtest/gtest.h>

#include "common/rng.h"
#include "db/generators.h"
#include "eval/bounded_eval.h"
#include "eval/naive_eval.h"
#include "eval/reference_eval.h"
#include "logic/builder.h"
#include "logic/parser.h"
#include "logic/random_formula.h"

namespace bvq {
namespace {

TEST(NaiveEvalTest, AtomsAndJoins) {
  Database db(4);
  ASSERT_TRUE(
      db.AddRelation("E", Relation::FromTuples(2, {{0, 1}, {1, 2}, {2, 3}}))
          .ok());
  NaiveEvaluator eval(db);
  // Path of length 2: exists x2 (E(x1,x2) & E(x2,x3)).
  auto f = ParseFormula("exists x2 . E(x1,x2) & E(x2,x3)");
  auto r = eval.Evaluate(*f);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->vars, (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(r->rel, Relation::FromTuples(2, {{0, 2}, {1, 3}}));
}

TEST(NaiveEvalTest, RecordsIntermediateArity) {
  Database db(3);
  ASSERT_TRUE(db.AddRelation("E", Relation::FromTuples(2, {{0, 1}})).ok());
  NaiveEvaluator eval(db);
  // Conjunction over disjoint variables: cross product of arity 4.
  auto f = ParseFormula("E(x1,x2) & E(x3,x4)");
  auto r = eval.Evaluate(*f);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(eval.stats().max_intermediate_arity, 4u);
}

TEST(NaiveEvalTest, RejectsFixpoints) {
  Database db(2);
  NaiveEvaluator eval(db);
  auto f = ParseFormula("[lfp T(x1) . T(x1)](x1)");
  auto r = eval.Evaluate(*f);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

TEST(NaiveEvalTest, TupleLimitGuard) {
  Database db(6);
  Rng rng(1);
  ASSERT_TRUE(db.AddRelation("E", RandomRelation(6, 2, 1.0, rng)).ok());
  NaiveEvaluator eval(db, /*max_tuples=*/100);
  // 4 disjoint atoms: 36^2 = 1296 tuples at the second join.
  auto f = ParseFormula("E(x1,x2) & E(x3,x4) & E(x5,x6)");
  auto r = eval.Evaluate(*f);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(NaiveEvalTest, QueryAnswer) {
  Database db(3);
  ASSERT_TRUE(db.AddRelation("P", Relation::FromTuples(1, {{1}})).ok());
  NaiveEvaluator eval(db);
  Query q = *ParseQuery("(x1,x2) P(x1)");
  auto r = eval.EvaluateQuery(q);
  ASSERT_TRUE(r.ok());
  // x2 unconstrained.
  EXPECT_EQ(*r, Relation::FromTuples(2, {{1, 0}, {1, 1}, {1, 2}}));
}

// Property: on random FO formulas, naive evaluation agrees with both the
// reference semantics and the bounded-variable evaluator.
TEST(NaiveEvalTest, AgreesWithReferenceAndBounded) {
  Rng rng(42);
  RandomFormulaOptions opts;
  opts.num_vars = 3;
  opts.max_size = 16;
  opts.predicates = {{"E", 2}, {"P", 1}};
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = 2 + rng.Below(3);
    Database db(n);
    ASSERT_TRUE(db.AddRelation("E", RandomRelation(n, 2, 0.35, rng)).ok());
    ASSERT_TRUE(db.AddRelation("P", RandomRelation(n, 1, 0.5, rng)).ok());
    FormulaPtr f = RandomFormula(opts, rng);

    Query q;
    q.formula = f;
    q.answer_vars = {0, 1, 2};

    ReferenceEvaluator ref(db, 3);
    auto expected = ref.EvaluateQuery(q);
    ASSERT_TRUE(expected.ok());

    NaiveEvaluator naive(db);
    auto got_naive = naive.EvaluateQuery(q);
    ASSERT_TRUE(got_naive.ok()) << got_naive.status().ToString();
    EXPECT_EQ(*got_naive, *expected) << FormulaToString(f);

    BoundedEvaluator bounded(db, 3);
    auto got_bounded = bounded.EvaluateQuery(q);
    ASSERT_TRUE(got_bounded.ok());
    EXPECT_EQ(*got_bounded, *expected) << FormulaToString(f);
  }
}

// The paper's core observation, as a test: on chain queries, the naive
// evaluator's intermediate arity grows with the chain length, while the
// 3-variable rewriting keeps every intermediate at arity <= 3 and both
// agree on the answer.
TEST(NaiveEvalTest, ChainQueryBlowupVersusReuse) {
  const std::size_t length = 6;
  Database db(8);
  ASSERT_TRUE(db.AddRelation("E", PathGraph(8)).ok());

  // Naive formula: exists x2..x_{length} E(x1,x2) & ... using fresh
  // variables.
  FormulaPtr chain = Atom("E", {0, 1});
  for (std::size_t i = 1; i < length; ++i) {
    chain = And(chain, Atom("E", {i, i + 1}));
  }
  for (std::size_t i = length; i >= 1; --i) {
    chain = Exists(i, chain);
  }
  NaiveEvaluator naive(db);
  auto naive_result = naive.Evaluate(chain);
  ASSERT_TRUE(naive_result.ok());
  EXPECT_GE(naive.stats().max_intermediate_arity, 3u);

  // FO^3 rewriting per Section 2.2: phi_1(x1,x2) = E(x1,x2),
  // phi_{n+1}(x1,x2) = exists x3 (E(x1,x3) & exists x1 (x1 = x3 &
  // phi_n(x1,x2))).
  FormulaPtr phi = Atom("E", {0, 1});
  for (std::size_t i = 1; i < length; ++i) {
    phi = Exists(2, And(Atom("E", {0, 2}),
                        Exists(0, And(Eq(0, 2), phi))));
  }
  // Answer: nodes x1 with a length-`length` path to some x2.
  FormulaPtr reach = Exists(1, phi);
  BoundedEvaluator bounded(db, 3);
  auto bounded_result = bounded.Evaluate(reach);
  ASSERT_TRUE(bounded_result.ok());

  // Sources with a length-6 path in an 8-path: nodes 0 and 1.
  Relation expect = Relation::FromTuples(1, {{0}, {1}});
  EXPECT_EQ(bounded_result->ToRelation({0}), expect);
  VarRelation nv = *naive_result;
  EXPECT_EQ(nv.rel, expect);
}

}  // namespace
}  // namespace bvq
