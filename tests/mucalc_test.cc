#include <gtest/gtest.h>

#include "common/rng.h"
#include "logic/analysis.h"
#include "logic/parser.h"
#include "mucalc/kripke.h"
#include "mucalc/mucalc.h"

namespace bvq {
namespace mucalc {
namespace {

KripkeStructure Line(std::size_t n) {
  KripkeStructure k(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    EXPECT_TRUE(k.AddTransition(i, i + 1).ok());
  }
  EXPECT_TRUE(k.AddTransition(n - 1, n - 1).ok());  // total
  return k;
}

TEST(KripkeTest, DatabaseView) {
  KripkeStructure k(3);
  ASSERT_TRUE(k.AddTransition(0, 1).ok());
  ASSERT_TRUE(k.AddLabel("p", 2).ok());
  Database db = k.ToDatabase();
  EXPECT_EQ(db.domain_size(), 3u);
  EXPECT_TRUE((*db.GetRelation("E"))->Contains(Tuple{0, 1}));
  EXPECT_TRUE((*db.GetRelation("p"))->Contains(Tuple{2}));
  EXPECT_FALSE(k.AddTransition(5, 0).ok());
  EXPECT_FALSE(k.AddLabel("p", 9).ok());
}

TEST(MuParserTest, ParsesFixpoints) {
  auto f = ParseMuFormula("mu Z . p | <> Z");
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  EXPECT_EQ((*f)->kind(), MuKind::kMu);
  EXPECT_EQ((*f)->name(), "Z");
  EXPECT_EQ((*f)->ToString(), "mu Z . ((p | <>(Z)))");
  EXPECT_TRUE(IsWellFormedMu(*f));
}

TEST(MuParserTest, Errors) {
  EXPECT_FALSE(ParseMuFormula("").ok());
  EXPECT_FALSE(ParseMuFormula("mu . p").ok());
  EXPECT_FALSE(ParseMuFormula("(p").ok());
  EXPECT_FALSE(ParseMuFormula("p q").ok());
}

TEST(MuParserTest, PositivityCheck) {
  auto bad = ParseMuFormula("mu Z . ! Z");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(IsWellFormedMu(*bad));
  auto doubly = ParseMuFormula("mu Z . ! ! Z");
  ASSERT_TRUE(doubly.ok());
  EXPECT_TRUE(IsWellFormedMu(*doubly));
}

TEST(ModelCheckerTest, ReachabilityMuFormula) {
  // mu Z . p | <>Z: can reach a p-state.
  KripkeStructure k = Line(5);
  ASSERT_TRUE(k.AddLabel("p", 3).ok());
  ModelChecker mc(k);
  auto f = ParseMuFormula("mu Z . p | <> Z");
  ASSERT_TRUE(f.ok());
  auto sat = mc.CheckDirect(*f);
  ASSERT_TRUE(sat.ok());
  for (std::size_t s = 0; s < 5; ++s) {
    EXPECT_EQ(sat->Test(s), s <= 3) << s;
  }
}

TEST(ModelCheckerTest, SafetyNuFormula) {
  // nu Z . !bad & []Z: no path ever reaches bad.
  KripkeStructure k = Line(4);
  ASSERT_TRUE(k.AddLabel("bad", 2).ok());
  ModelChecker mc(k);
  auto f = ParseMuFormula("nu Z . ! bad & [] Z");
  ASSERT_TRUE(f.ok());
  auto sat = mc.CheckDirect(*f);
  ASSERT_TRUE(sat.ok());
  // Only state 3 (the self-looping sink after bad) avoids bad forever.
  EXPECT_FALSE(sat->Test(0));
  EXPECT_FALSE(sat->Test(1));
  EXPECT_FALSE(sat->Test(2));
  EXPECT_TRUE(sat->Test(3));
}

TEST(TranslateToFp2Test, ProducesTwoVariableFixpointLogic) {
  auto f = ParseMuFormula("nu Z . (mu W . p | <> W) & [] Z");
  ASSERT_TRUE(f.ok());
  auto fp = TranslateToFp2(*f);
  ASSERT_TRUE(fp.ok()) << fp.status().ToString();
  EXPECT_LE(NumVariables(*fp), 2u);  // the paper's FP^2 claim
  LanguageClass c = ClassifyLanguage(*fp);
  EXPECT_TRUE(c.fixpoint);
  EXPECT_FALSE(c.first_order);
}

TEST(TranslateToFp2Test, RejectsNegativeVariables) {
  auto f = ParseMuFormula("mu Z . ! Z");
  ASSERT_TRUE(f.ok());
  EXPECT_FALSE(TranslateToFp2(*f).ok());
}

TEST(ModelCheckerTest, DirectAndFp2Agree) {
  Rng rng(404);
  const char* formulas[] = {
      "mu Z . p | <> Z",
      "nu Z . p & [] Z",
      "nu Z . (mu W . p | <> W) & [] Z",      // AG EF p (on total systems)
      "mu Z . q | (p & [] Z)",                // A[p U q]-ish
      "nu Z . mu W . <> ((p & Z) | W)",       // E GF p (Buchi)
      "[] false",                              // deadlock states
      "<> true & ! p",
  };
  for (int trial = 0; trial < 10; ++trial) {
    KripkeStructure k = RandomKripke(2 + rng.Below(5), 0.3, {"p", "q"}, rng);
    ModelChecker mc(k);
    for (const char* text : formulas) {
      auto f = ParseMuFormula(text);
      ASSERT_TRUE(f.ok()) << text;
      auto direct = mc.CheckDirect(*f);
      ASSERT_TRUE(direct.ok()) << text;
      auto via_fp2 = mc.CheckViaFp2(*f);
      ASSERT_TRUE(via_fp2.ok()) << text << ": "
                                << via_fp2.status().ToString();
      EXPECT_EQ(*direct, *via_fp2)
          << text << " on\n"
          << k.ToDatabase().ToString();
      auto via_mono = mc.CheckViaFp2(*f, FixpointStrategy::kMonotoneReuse);
      ASSERT_TRUE(via_mono.ok());
      EXPECT_EQ(*direct, *via_mono) << text;
    }
  }
}

TEST(CtlTest, OperatorsOnMutex) {
  KripkeStructure k = MutexProtocol();
  ModelChecker mc(k);

  // Safety: mutual exclusion holds from every state except the joint
  // critical state (2,2) itself, which exists in the state space but is
  // unreachable from the initial state 0.
  auto safety = CtlAG(MuNot(MuAnd(MuName("c1"), MuName("c2"))));
  auto safe = mc.CheckDirect(safety);
  ASSERT_TRUE(safe.ok());
  EXPECT_EQ(safe->Count(), k.num_states() - 1);
  EXPECT_TRUE(safe->Test(0));
  EXPECT_FALSE(safe->Test(8));

  // Possibility: from the initial state both processes can reach their
  // critical sections.
  auto possible = MuAnd(CtlEF(MuName("c1")), CtlEF(MuName("c2")));
  auto poss = mc.CheckDirect(possible);
  ASSERT_TRUE(poss.ok());
  EXPECT_TRUE(poss->Test(0));

  // Non-property: AF c1 fails at the initial state (the scheduler can
  // starve process 1).
  auto af = CtlAF(MuName("c1"));
  auto afr = mc.CheckDirect(af);
  ASSERT_TRUE(afr.ok());
  EXPECT_FALSE(afr->Test(0));

  // EU: idle1 can stay idle until trying, trivially at the start.
  auto eu = CtlEU(MuName("i1"), MuName("t1"));
  auto eur = mc.CheckDirect(eu);
  ASSERT_TRUE(eur.ok());
  EXPECT_TRUE(eur->Test(0));

  // The same four through FP^2 agree.
  for (const MuFormulaPtr& f : {safety, possible, af, eu}) {
    auto direct = mc.CheckDirect(f);
    auto fp2 = mc.CheckViaFp2(f);
    ASSERT_TRUE(direct.ok());
    ASSERT_TRUE(fp2.ok()) << fp2.status().ToString();
    EXPECT_EQ(*direct, *fp2) << f->ToString();
  }
}

TEST(ModelCheckerTest, MutexSafetyViaFp2Formula) {
  // The end-to-end "verification as query evaluation" pipeline, spelled
  // out: translate AG !(c1 & c2) and inspect the produced FP^2 text.
  KripkeStructure k = MutexProtocol();
  auto f = CtlAG(MuNot(MuAnd(MuName("c1"), MuName("c2"))));
  auto fp2 = TranslateToFp2(f);
  ASSERT_TRUE(fp2.ok());
  EXPECT_LE(NumVariables(*fp2), 2u);
  ModelChecker mc(k);
  auto result = mc.CheckViaFp2(f);
  ASSERT_TRUE(result.ok());
  // Every state but the (unreachable) joint-critical one satisfies the
  // invariant; in particular the initial state does.
  EXPECT_EQ(result->Count(), k.num_states() - 1);
  EXPECT_TRUE(result->Test(0));
}

}  // namespace
}  // namespace mucalc
}  // namespace bvq
