// Graph 3-colorability as an ESO^2 query (Fagin's theorem in action;
// Corollary 3.7 of the paper gives the NP combined-complexity bound that
// makes this evaluation strategy — ground to SAT, solve with CDCL —
// the right one).
//
// exists R exists G exists B:
//   every node has a color, adjacent nodes differ.

#include <cstdio>

#include "common/rng.h"
#include "db/generators.h"
#include "eval/eso_eval.h"
#include "logic/parser.h"

int main() {
  using namespace bvq;

  auto query = ParseFormula(
      "exists2 R/1 . exists2 G/1 . exists2 B/1 . "
      "(forall x1 . (R(x1) | G(x1) | B(x1))) & "
      "(forall x1 . forall x2 . (E(x1,x2) -> "
      "!(R(x1) & R(x2)) & !(G(x1) & G(x2)) & !(B(x1) & B(x2))))");
  if (!query.ok()) {
    std::printf("parse error: %s\n", query.status().ToString().c_str());
    return 1;
  }

  Rng rng(11);
  struct Case {
    const char* name;
    Relation edges;
    std::size_t nodes;
  };
  const std::size_t n = 40;
  Case cases[] = {
      {"even cycle C40", CycleGraph(n), n},
      {"odd cycle C41", CycleGraph(41), 41},
      {"sparse random G(40, 0.05)", RandomGraph(n, 0.05, rng), n},
      {"dense random G(40, 0.5)", RandomGraph(n, 0.5, rng), n},
  };
  // K4 is not 3-colorable.
  RelationBuilder k4(2);
  for (Value i = 0; i < 4; ++i) {
    for (Value j = 0; j < 4; ++j) {
      if (i != j) {
        Value row[2] = {i, j};
        k4.Add(row);
      }
    }
  }

  auto run = [&](const char* name, std::size_t nodes, Relation edges) {
    Database db(nodes);
    if (!db.AddRelation("E", std::move(edges)).ok()) return 1;
    EsoEvaluator eval(db, 2);
    EsoWitness witness;
    auto result = eval.HoldsSentence(*query, &witness);
    if (!result.ok()) {
      std::printf("%s: error %s\n", name, result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-28s 3-colorable: %-3s (CNF: %zu vars, %zu clauses, "
                "%llu conflicts)\n",
                name, *result ? "yes" : "no", eval.stats().cnf_vars,
                eval.stats().cnf_clauses,
                static_cast<unsigned long long>(
                    eval.stats().solver.conflicts));
    if (*result) {
      // Verify the witness is a real coloring.
      const Relation& e = **db.GetRelation("E");
      auto color_of = [&](Value v) {
        if (witness.count("R") && witness.at("R").Contains(Tuple{v}))
          return 'R';
        if (witness.count("G") && witness.at("G").Contains(Tuple{v}))
          return 'G';
        return 'B';
      };
      bool valid = true;
      e.ForEach([&](const Value* t) {
        if (color_of(t[0]) == color_of(t[1])) valid = false;
      });
      std::printf("%-28s   witness coloring valid: %s\n", "",
                  valid ? "yes" : "NO (BUG)");
      if (!valid) return 1;
    }
    return 0;
  };

  for (Case& c : cases) {
    if (run(c.name, c.nodes, std::move(c.edges)) != 0) return 1;
  }
  if (run("K4 (complete on 4 nodes)", 4, k4.Build()) != 0) return 1;
  return 0;
}
