// Proposition 3.2 end-to-end: the Path Systems problem (PTIME-complete,
// Cook 1974) solved four ways —
//   1. the definitional iterative solver,
//   2. a Datalog program (semi-naive bottom-up),
//   3. the paper's FO^3 sentence family evaluated by the bounded-variable
//      engine (this is the PTIME-hardness reduction for the combined
//      complexity of FO^3),
//   4. the same FO^3 family with stratified-negation Datalog computing the
//      *unreachable* elements as a cross-check.

#include <cstdio>

#include "common/rng.h"
#include "datalog/datalog.h"
#include "eval/bounded_eval.h"
#include "logic/analysis.h"
#include "reductions/path_systems.h"

int main() {
  using namespace bvq;

  Rng rng(2026);
  for (int trial = 0; trial < 4; ++trial) {
    PathSystem ps = trial == 0 ? TreePathSystem(8)
                               : RandomPathSystem(10 + 6 * trial, 0.9, 2, 2,
                                                  rng);
    Database db = ps.ToDatabase();

    // 1. Definitional solver.
    const bool direct = ps.Accepts();
    const Relation reachable = ps.Reachable();

    // 2. Datalog.
    auto program = datalog::ParseProgram(PathSystemDatalogProgram());
    if (!program.ok()) return 1;
    datalog::DatalogEngine engine(db);
    auto out = engine.Evaluate(*program);
    if (!out.ok()) {
      std::printf("datalog error: %s\n", out.status().ToString().c_str());
      return 1;
    }
    const bool via_datalog = !(*out->GetRelation("Goal"))->empty();

    // 3. FO^3 sentence (the Proposition 3.2 reduction).
    FormulaPtr sentence = PathSystemSentence(ps.num_elements);
    BoundedEvaluator eval(db, 3);
    auto result = eval.Evaluate(sentence);
    if (!result.ok()) {
      std::printf("FO^3 error: %s\n", result.status().ToString().c_str());
      return 1;
    }
    const bool via_fo3 = !result->Empty();

    // 4. Stratified negation: elements NOT reachable.
    auto neg_program = datalog::ParseProgram(
        "P(X) :- S(X).\n"
        "P(X) :- Q(X,Y,Z), P(Y), P(Z).\n"
        "elem(X) :- S(X).\n"
        "elem(X) :- T(X).\n"
        "elem(X) :- Q(X,Y,Z).\n"
        "elem(Y) :- Q(X,Y,Z).\n"
        "elem(Z) :- Q(X,Y,Z).\n"
        "unprovable(X) :- elem(X), not P(X).\n");
    if (!neg_program.ok()) return 1;
    datalog::DatalogEngine neg_engine(db);
    auto neg_out = neg_engine.Evaluate(*neg_program);
    if (!neg_out.ok()) return 1;
    bool negation_consistent = true;
    (*neg_out->GetRelation("unprovable"))->ForEach([&](const Value* t) {
      if (reachable.Contains(t)) negation_consistent = false;
    });

    const bool agree = direct == via_datalog && direct == via_fo3;
    std::printf(
        "instance %d: %2zu elements, %3zu inference triples | reachable "
        "%2zu | accepts: solver=%-3s datalog=%-3s FO^3=%-3s "
        "(formula size %zu, %zu vars) | negation cross-check: %s %s\n",
        trial, ps.num_elements, ps.q.size(), reachable.size(),
        direct ? "yes" : "no", via_datalog ? "yes" : "no",
        via_fo3 ? "yes" : "no", sentence->Size(), NumVariables(sentence),
        negation_consistent ? "ok" : "FAILED",
        agree ? "" : "  <-- MISMATCH (BUG)");
    if (!agree || !negation_consistent) return 1;
  }
  return 0;
}
