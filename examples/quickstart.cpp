// Quickstart: the paper's introductory example.
//
// A company database EMP(Emp,Dept), MGR(Dept,Mgr), SCY(Mgr,Scy),
// SAL(Person,Sal) and the query "find employees who earn less money than
// their manager's secretary". The naive plan crosses five relations into a
// wide intermediate; the plan the paper advocates keeps every intermediate
// at arity <= 4. This program runs both and prints the intermediate sizes,
// then runs the same query through the automatic variable-minimizing
// rewriter and the bounded-variable evaluator of Proposition 3.1.

#include <cstdio>

#include "common/rng.h"
#include "db/generators.h"
#include "eval/bounded_eval.h"
#include "optimizer/conjunctive_query.h"
#include "optimizer/variable_min.h"

int main() {
  using namespace bvq;
  using namespace bvq::optimizer;

  Rng rng(2026);
  Database db = EmployeeDatabase(/*num_employees=*/60, /*num_depts=*/8,
                                 /*salary_range=*/20, rng);
  std::printf("Company database: domain %zu, %zu tuples total\n",
              db.domain_size(), db.TotalTuples());

  auto cq = ParseCq(
      "Q(E) :- EMP(E,D), MGR(D,M), SCY(M,C), SAL(E,S1), SAL(C,S2), "
      "LT(S1,S2).");
  if (!cq.ok()) {
    std::printf("parse error: %s\n", cq.status().ToString().c_str());
    return 1;
  }
  std::printf("Query: %s\n\n", cq->ToString().c_str());

  // Plan 1: naive left-to-right joins (the textbook cross-product-ish
  // plan; order chosen to be bad on purpose, joining the two unrelated
  // SAL atoms early).
  ConjunctiveQuery bad = *cq;
  std::swap(bad.atoms[1], bad.atoms[4]);  // EMP, SAL(C,S2), SCY, SAL(E,S1)...
  CqEvalStats bad_stats;
  auto bad_result = EvaluateCqNaive(bad, db, &bad_stats);
  if (!bad_result.ok()) {
    std::printf("naive evaluation failed: %s\n",
                bad_result.status().ToString().c_str());
    return 1;
  }
  std::printf("Naive plan:    max intermediate arity %zu, max tuples %zu\n",
              bad_stats.max_intermediate_arity,
              bad_stats.max_intermediate_tuples);

  // Plan 2: variable-minimized rewriting evaluated with k-ary
  // intermediates (Proposition 3.1).
  auto plan = ExactMinWidthOrder(*cq);
  if (!plan.ok()) {
    std::printf("planning failed: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  auto rewrite = RewriteWithFewVariables(*cq, plan->order);
  if (!rewrite.ok()) {
    std::printf("rewrite failed: %s\n", rewrite.status().ToString().c_str());
    return 1;
  }
  std::printf("Minimized:     %zu variables (intermediates of arity <= %zu)\n",
              rewrite->num_vars, rewrite->num_vars);

  BoundedEvaluator eval(db, rewrite->num_vars);
  auto answer = eval.EvaluateQuery(rewrite->query);
  if (!answer.ok()) {
    std::printf("evaluation failed: %s\n",
                answer.status().ToString().c_str());
    return 1;
  }

  if (*answer == *bad_result) {
    std::printf("Both plans agree: %zu employees earn less than their "
                "manager's secretary.\n",
                answer->size());
  } else {
    std::printf("BUG: plans disagree!\n");
    return 1;
  }
  std::printf("First few: ");
  for (std::size_t i = 0; i < answer->size() && i < 8; ++i) {
    std::printf("%u ", answer->tuple(i)[0]);
  }
  std::printf("\n");
  return 0;
}
