// Variable reuse on graph queries (Section 2.2 of the paper).
//
// "Nodes connected by a path of length n" needs n+1 variables naively but
// only 3 with reuse; transitive closure needs the fixpoint operator. This
// example runs (a) the naive chain query, (b) the FO^3 rewriting, and
// (c) transitive closure in FP^3, on a random graph, and reports the
// intermediate sizes that motivate the whole paper.

#include <cstdio>

#include "common/rng.h"
#include "db/generators.h"
#include "eval/bounded_eval.h"
#include "eval/naive_eval.h"
#include "logic/builder.h"
#include "logic/parser.h"

namespace {

// exists z1..z_{n-1}: E(x, z1) & E(z1, z2) & ... & E(z_{n-1}, y), with all
// distinct variables (x = var 0, y = var 1, z_i = var i+1).
bvq::FormulaPtr NaiveChain(std::size_t n) {
  using namespace bvq;
  std::vector<FormulaPtr> hops;
  std::size_t prev = 0;
  for (std::size_t i = 1; i < n; ++i) {
    hops.push_back(Atom("E", {prev, i + 1}));
    prev = i + 1;
  }
  hops.push_back(Atom("E", {prev, 1}));
  FormulaPtr body = AndAll(std::move(hops));
  for (std::size_t i = n; i >= 2; --i) body = Exists(i, body);
  return body;
}

// The FO^3 version from the paper: phi_1(x1,x2) = E(x1,x2);
// phi_{m+1}(x1,x2) = exists x3 (E(x1,x3) & exists x1 (x1 = x3 &
// phi_m(x1,x2))).
bvq::FormulaPtr ReuseChain(std::size_t n) {
  using namespace bvq;
  FormulaPtr phi = Atom("E", {0, 1});
  for (std::size_t i = 1; i < n; ++i) {
    phi = Exists(2, And(Atom("E", {0, 2}), Exists(0, And(Eq(0, 2), phi))));
  }
  return phi;
}

}  // namespace

int main() {
  using namespace bvq;

  Rng rng(7);
  const std::size_t nodes = 30;
  Database db(nodes);
  if (!db.AddRelation("E", RandomGraph(nodes, 0.08, rng)).ok()) return 1;
  std::printf("Random graph: %zu nodes, %zu edges\n\n", nodes,
              (*db.GetRelation("E"))->size());

  for (std::size_t len : {3, 5, 7}) {
    NaiveEvaluator naive(db);
    auto naive_result = naive.Evaluate(NaiveChain(len));
    BoundedEvaluator bounded(db, 3);
    auto reuse_result = bounded.Evaluate(ReuseChain(len));
    if (!naive_result.ok() || !reuse_result.ok()) {
      std::printf("evaluation failed\n");
      return 1;
    }
    Relation naive_pairs = naive_result->rel;
    Relation reuse_pairs = reuse_result->ToRelation({0, 1});
    std::printf(
        "path length %zu: %zu pairs | naive: %zu vars, max intermediate "
        "arity %zu (%zu tuples) | FO^3: 3 vars, intermediates <= %zu "
        "tuples | agree: %s\n",
        len, reuse_pairs.size(), len + 1,
        naive.stats().max_intermediate_arity,
        naive.stats().max_intermediate_tuples, nodes * nodes * nodes,
        naive_pairs == reuse_pairs ? "yes" : "NO (BUG)");
    if (naive_pairs != reuse_pairs) return 1;
  }

  // Transitive closure in FP^3.
  auto tc = ParseFormula(
      "[lfp T(x1,x2) . E(x1,x2) | exists x3 . (E(x1,x3) & exists x1 . "
      "(x1 = x3 & T(x1,x2)))](x1,x2)");
  BoundedEvaluator eval(db, 3);
  auto closure = eval.Evaluate(*tc);
  if (!closure.ok()) return 1;
  std::printf(
      "\ntransitive closure (FP^3): %zu reachable pairs, computed in %zu "
      "fixpoint iterations\n",
      closure->ToRelation({0, 1}).size(), eval.stats().fixpoint_iterations);
  return 0;
}
