// Model checking as bounded-variable query evaluation (Section 1 of the
// paper): a finite-state program is a database of unary and binary
// relations, the propositional mu-calculus is a fragment of FP^2, and
// verifying a property is evaluating an FP^2 query.
//
// We check a two-process mutual exclusion protocol against mu-calculus /
// CTL properties, both with a conventional model checker and through the
// FP^2 translation, and print the produced FP^2 formulas.

#include <cstdio>

#include "logic/parser.h"
#include "mucalc/kripke.h"
#include "mucalc/mucalc.h"

int main() {
  using namespace bvq;
  using namespace bvq::mucalc;

  KripkeStructure k = MutexProtocol();
  std::printf("Mutex protocol: %zu states, %zu transitions\n\n",
              k.num_states(), k.transitions().size());

  struct Property {
    const char* name;
    MuFormulaPtr formula;
  };
  const Property properties[] = {
      {"mutual exclusion (AG !(c1 & c2))",
       CtlAG(MuNot(MuAnd(MuName("c1"), MuName("c2"))))},
      {"possible entry (EF c1 & EF c2)",
       MuAnd(CtlEF(MuName("c1")), CtlEF(MuName("c2")))},
      {"guaranteed entry (AF c1) -- fails: the scheduler may starve P1",
       CtlAF(MuName("c1"))},
      {"P1 can always retry (AG EF t1)", CtlAG(CtlEF(MuName("t1")))},
      {"some run visits c1 infinitely often (nu Z. mu W. <>((c1&Z)|W))",
       *ParseMuFormula("nu Z . mu W . <> ((c1 & Z) | W)")},
  };

  ModelChecker mc(k);
  for (const Property& prop : properties) {
    auto fp2 = TranslateToFp2(prop.formula);
    if (!fp2.ok()) {
      std::printf("translation failed: %s\n",
                  fp2.status().ToString().c_str());
      return 1;
    }
    auto direct = mc.CheckDirect(prop.formula);
    auto via_fp2 = mc.CheckViaFp2(prop.formula);
    if (!direct.ok() || !via_fp2.ok()) {
      std::printf("check failed for %s\n", prop.name);
      return 1;
    }
    const bool agree = *direct == *via_fp2;
    std::printf("%s\n", prop.name);
    std::printf("  FP^2: %s\n", FormulaToString(*fp2).c_str());
    std::printf("  holds at initial state: %s | satisfying states: %zu/%zu "
                "| engines agree: %s\n\n",
                direct->Test(0) ? "yes" : "no", direct->Count(),
                k.num_states(), agree ? "yes" : "NO (BUG)");
    if (!agree) return 1;
  }
  return 0;
}
