// Theorem 4.6, live: quantified Boolean formulas decided by evaluating
// PFP^1 queries over the fixed two-element database B0 = ({0,1}, P={0}).
//
// Each quantifier becomes a partial fixpoint whose stage sequence walks
// the two truth values; a cycle (no limit) encodes one outcome and a
// stabilized stage the other. The reduction shows the expression
// complexity of bounded-variable partial fixpoint logic is PSPACE-hard
// even though only ONE individual variable is used.

#include <cstdio>

#include "common/rng.h"
#include "eval/bounded_eval.h"
#include "logic/analysis.h"
#include "logic/parser.h"
#include "reductions/qbf.h"

int main() {
  using namespace bvq;

  Database b0 = QbfFixedDatabase();
  std::printf("Fixed database B0: %s\n", b0.ToString().c_str());

  const char* instances[] = {
      "A Y1 E Y2 : Y1 <-> Y2",
      "E Y1 A Y2 : Y1 <-> Y2",
      "E Y1 E Y2 E Y3 : (Y1 | Y2) & (! Y1 | Y3) & (! Y2 | ! Y3)",
      "A Y1 A Y2 : Y1 | ! Y1 | Y2",
      "A Y1 E Y2 A Y3 E Y4 : (Y1 <-> Y2) & (Y3 <-> Y4)",
  };
  for (const char* text : instances) {
    auto qbf = ParseQbf(text);
    if (!qbf.ok()) {
      std::printf("parse error: %s\n", qbf.status().ToString().c_str());
      return 1;
    }
    auto expected = SolveQbf(*qbf);
    auto pfp = QbfToPfp(*qbf);
    if (!expected.ok() || !pfp.ok()) return 1;

    BoundedEvaluator eval(b0, 1);
    auto result = eval.Evaluate(*pfp);
    if (!result.ok()) {
      std::printf("evaluation error: %s\n",
                  result.status().ToString().c_str());
      return 1;
    }
    const bool via_pfp = !result->Empty();
    std::printf("%-55s  solver: %-5s  PFP^1: %-5s  (formula size %zu, "
                "%zu pfp stages)  %s\n",
                text, *expected ? "true" : "false",
                via_pfp ? "true" : "false", (*pfp)->Size(),
                eval.stats().fixpoint_iterations,
                via_pfp == *expected ? "" : "MISMATCH (BUG)");
    if (via_pfp != *expected) return 1;
  }

  // Random stress: the reduction agrees with the recursive solver.
  Rng rng(123);
  int agree = 0;
  const int trials = 50;
  for (int i = 0; i < trials; ++i) {
    Qbf qbf = RandomQbf(3 + rng.Below(4), 3 + rng.Below(5), rng);
    auto expected = SolveQbf(qbf);
    auto pfp = QbfToPfp(qbf);
    if (!expected.ok() || !pfp.ok()) return 1;
    BoundedEvaluator eval(b0, 1);
    auto result = eval.Evaluate(*pfp);
    if (!result.ok()) return 1;
    if (!result->Empty() == *expected) ++agree;
  }
  std::printf("\nrandom QBFs: %d/%d reductions agree with the recursive "
              "solver\n",
              agree, trials);
  return agree == trials ? 0 : 1;
}
