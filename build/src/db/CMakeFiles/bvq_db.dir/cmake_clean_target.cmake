file(REMOVE_RECURSE
  "libbvq_db.a"
)
