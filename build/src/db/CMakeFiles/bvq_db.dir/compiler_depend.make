# Empty compiler generated dependencies file for bvq_db.
# This may be replaced when dependencies are built.
