
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/db/assignment_set.cc" "src/db/CMakeFiles/bvq_db.dir/assignment_set.cc.o" "gcc" "src/db/CMakeFiles/bvq_db.dir/assignment_set.cc.o.d"
  "/root/repo/src/db/database.cc" "src/db/CMakeFiles/bvq_db.dir/database.cc.o" "gcc" "src/db/CMakeFiles/bvq_db.dir/database.cc.o.d"
  "/root/repo/src/db/generators.cc" "src/db/CMakeFiles/bvq_db.dir/generators.cc.o" "gcc" "src/db/CMakeFiles/bvq_db.dir/generators.cc.o.d"
  "/root/repo/src/db/relalg.cc" "src/db/CMakeFiles/bvq_db.dir/relalg.cc.o" "gcc" "src/db/CMakeFiles/bvq_db.dir/relalg.cc.o.d"
  "/root/repo/src/db/relation.cc" "src/db/CMakeFiles/bvq_db.dir/relation.cc.o" "gcc" "src/db/CMakeFiles/bvq_db.dir/relation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bvq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
