file(REMOVE_RECURSE
  "CMakeFiles/bvq_db.dir/assignment_set.cc.o"
  "CMakeFiles/bvq_db.dir/assignment_set.cc.o.d"
  "CMakeFiles/bvq_db.dir/database.cc.o"
  "CMakeFiles/bvq_db.dir/database.cc.o.d"
  "CMakeFiles/bvq_db.dir/generators.cc.o"
  "CMakeFiles/bvq_db.dir/generators.cc.o.d"
  "CMakeFiles/bvq_db.dir/relalg.cc.o"
  "CMakeFiles/bvq_db.dir/relalg.cc.o.d"
  "CMakeFiles/bvq_db.dir/relation.cc.o"
  "CMakeFiles/bvq_db.dir/relation.cc.o.d"
  "libbvq_db.a"
  "libbvq_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bvq_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
