# Empty dependencies file for bvq_mucalc.
# This may be replaced when dependencies are built.
