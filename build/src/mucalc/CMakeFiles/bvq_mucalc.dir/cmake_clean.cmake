file(REMOVE_RECURSE
  "CMakeFiles/bvq_mucalc.dir/kripke.cc.o"
  "CMakeFiles/bvq_mucalc.dir/kripke.cc.o.d"
  "CMakeFiles/bvq_mucalc.dir/mucalc.cc.o"
  "CMakeFiles/bvq_mucalc.dir/mucalc.cc.o.d"
  "libbvq_mucalc.a"
  "libbvq_mucalc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bvq_mucalc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
