file(REMOVE_RECURSE
  "libbvq_mucalc.a"
)
