
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mucalc/kripke.cc" "src/mucalc/CMakeFiles/bvq_mucalc.dir/kripke.cc.o" "gcc" "src/mucalc/CMakeFiles/bvq_mucalc.dir/kripke.cc.o.d"
  "/root/repo/src/mucalc/mucalc.cc" "src/mucalc/CMakeFiles/bvq_mucalc.dir/mucalc.cc.o" "gcc" "src/mucalc/CMakeFiles/bvq_mucalc.dir/mucalc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bvq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/bvq_db.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/bvq_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/bvq_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/bvq_sat.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
