# Empty compiler generated dependencies file for bvq_logic.
# This may be replaced when dependencies are built.
