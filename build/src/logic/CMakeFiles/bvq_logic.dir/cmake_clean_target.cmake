file(REMOVE_RECURSE
  "libbvq_logic.a"
)
