file(REMOVE_RECURSE
  "CMakeFiles/bvq_logic.dir/analysis.cc.o"
  "CMakeFiles/bvq_logic.dir/analysis.cc.o.d"
  "CMakeFiles/bvq_logic.dir/builder.cc.o"
  "CMakeFiles/bvq_logic.dir/builder.cc.o.d"
  "CMakeFiles/bvq_logic.dir/nnf.cc.o"
  "CMakeFiles/bvq_logic.dir/nnf.cc.o.d"
  "CMakeFiles/bvq_logic.dir/parser.cc.o"
  "CMakeFiles/bvq_logic.dir/parser.cc.o.d"
  "CMakeFiles/bvq_logic.dir/pebble_game.cc.o"
  "CMakeFiles/bvq_logic.dir/pebble_game.cc.o.d"
  "CMakeFiles/bvq_logic.dir/random_formula.cc.o"
  "CMakeFiles/bvq_logic.dir/random_formula.cc.o.d"
  "libbvq_logic.a"
  "libbvq_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bvq_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
