
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optimizer/acyclic.cc" "src/optimizer/CMakeFiles/bvq_optimizer.dir/acyclic.cc.o" "gcc" "src/optimizer/CMakeFiles/bvq_optimizer.dir/acyclic.cc.o.d"
  "/root/repo/src/optimizer/conjunctive_query.cc" "src/optimizer/CMakeFiles/bvq_optimizer.dir/conjunctive_query.cc.o" "gcc" "src/optimizer/CMakeFiles/bvq_optimizer.dir/conjunctive_query.cc.o.d"
  "/root/repo/src/optimizer/containment.cc" "src/optimizer/CMakeFiles/bvq_optimizer.dir/containment.cc.o" "gcc" "src/optimizer/CMakeFiles/bvq_optimizer.dir/containment.cc.o.d"
  "/root/repo/src/optimizer/variable_min.cc" "src/optimizer/CMakeFiles/bvq_optimizer.dir/variable_min.cc.o" "gcc" "src/optimizer/CMakeFiles/bvq_optimizer.dir/variable_min.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bvq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/bvq_db.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/bvq_logic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
