file(REMOVE_RECURSE
  "libbvq_optimizer.a"
)
