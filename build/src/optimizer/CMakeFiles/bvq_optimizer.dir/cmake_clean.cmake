file(REMOVE_RECURSE
  "CMakeFiles/bvq_optimizer.dir/acyclic.cc.o"
  "CMakeFiles/bvq_optimizer.dir/acyclic.cc.o.d"
  "CMakeFiles/bvq_optimizer.dir/conjunctive_query.cc.o"
  "CMakeFiles/bvq_optimizer.dir/conjunctive_query.cc.o.d"
  "CMakeFiles/bvq_optimizer.dir/containment.cc.o"
  "CMakeFiles/bvq_optimizer.dir/containment.cc.o.d"
  "CMakeFiles/bvq_optimizer.dir/variable_min.cc.o"
  "CMakeFiles/bvq_optimizer.dir/variable_min.cc.o.d"
  "libbvq_optimizer.a"
  "libbvq_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bvq_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
