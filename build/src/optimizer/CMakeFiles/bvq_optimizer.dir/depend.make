# Empty dependencies file for bvq_optimizer.
# This may be replaced when dependencies are built.
