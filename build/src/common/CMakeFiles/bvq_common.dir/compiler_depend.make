# Empty compiler generated dependencies file for bvq_common.
# This may be replaced when dependencies are built.
