file(REMOVE_RECURSE
  "CMakeFiles/bvq_common.dir/bitset.cc.o"
  "CMakeFiles/bvq_common.dir/bitset.cc.o.d"
  "CMakeFiles/bvq_common.dir/index.cc.o"
  "CMakeFiles/bvq_common.dir/index.cc.o.d"
  "CMakeFiles/bvq_common.dir/status.cc.o"
  "CMakeFiles/bvq_common.dir/status.cc.o.d"
  "CMakeFiles/bvq_common.dir/strings.cc.o"
  "CMakeFiles/bvq_common.dir/strings.cc.o.d"
  "libbvq_common.a"
  "libbvq_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bvq_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
