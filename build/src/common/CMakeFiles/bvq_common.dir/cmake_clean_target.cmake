file(REMOVE_RECURSE
  "libbvq_common.a"
)
