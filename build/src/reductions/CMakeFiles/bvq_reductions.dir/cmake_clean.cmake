file(REMOVE_RECURSE
  "CMakeFiles/bvq_reductions.dir/path_systems.cc.o"
  "CMakeFiles/bvq_reductions.dir/path_systems.cc.o.d"
  "CMakeFiles/bvq_reductions.dir/qbf.cc.o"
  "CMakeFiles/bvq_reductions.dir/qbf.cc.o.d"
  "CMakeFiles/bvq_reductions.dir/sat_to_eso.cc.o"
  "CMakeFiles/bvq_reductions.dir/sat_to_eso.cc.o.d"
  "libbvq_reductions.a"
  "libbvq_reductions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bvq_reductions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
