
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reductions/path_systems.cc" "src/reductions/CMakeFiles/bvq_reductions.dir/path_systems.cc.o" "gcc" "src/reductions/CMakeFiles/bvq_reductions.dir/path_systems.cc.o.d"
  "/root/repo/src/reductions/qbf.cc" "src/reductions/CMakeFiles/bvq_reductions.dir/qbf.cc.o" "gcc" "src/reductions/CMakeFiles/bvq_reductions.dir/qbf.cc.o.d"
  "/root/repo/src/reductions/sat_to_eso.cc" "src/reductions/CMakeFiles/bvq_reductions.dir/sat_to_eso.cc.o" "gcc" "src/reductions/CMakeFiles/bvq_reductions.dir/sat_to_eso.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bvq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/bvq_db.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/bvq_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/bvq_sat.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
