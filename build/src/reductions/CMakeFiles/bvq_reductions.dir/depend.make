# Empty dependencies file for bvq_reductions.
# This may be replaced when dependencies are built.
