file(REMOVE_RECURSE
  "libbvq_reductions.a"
)
