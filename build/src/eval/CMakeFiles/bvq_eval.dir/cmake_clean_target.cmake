file(REMOVE_RECURSE
  "libbvq_eval.a"
)
