file(REMOVE_RECURSE
  "CMakeFiles/bvq_eval.dir/bounded_eval.cc.o"
  "CMakeFiles/bvq_eval.dir/bounded_eval.cc.o.d"
  "CMakeFiles/bvq_eval.dir/certificate.cc.o"
  "CMakeFiles/bvq_eval.dir/certificate.cc.o.d"
  "CMakeFiles/bvq_eval.dir/eso_eval.cc.o"
  "CMakeFiles/bvq_eval.dir/eso_eval.cc.o.d"
  "CMakeFiles/bvq_eval.dir/naive_eval.cc.o"
  "CMakeFiles/bvq_eval.dir/naive_eval.cc.o.d"
  "CMakeFiles/bvq_eval.dir/reference_eval.cc.o"
  "CMakeFiles/bvq_eval.dir/reference_eval.cc.o.d"
  "libbvq_eval.a"
  "libbvq_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bvq_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
