# Empty dependencies file for bvq_eval.
# This may be replaced when dependencies are built.
