file(REMOVE_RECURSE
  "libbvq_algebra.a"
)
