file(REMOVE_RECURSE
  "CMakeFiles/bvq_algebra.dir/boolean_value.cc.o"
  "CMakeFiles/bvq_algebra.dir/boolean_value.cc.o.d"
  "CMakeFiles/bvq_algebra.dir/parenthesis_grammar.cc.o"
  "CMakeFiles/bvq_algebra.dir/parenthesis_grammar.cc.o.d"
  "CMakeFiles/bvq_algebra.dir/word_algebra.cc.o"
  "CMakeFiles/bvq_algebra.dir/word_algebra.cc.o.d"
  "libbvq_algebra.a"
  "libbvq_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bvq_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
