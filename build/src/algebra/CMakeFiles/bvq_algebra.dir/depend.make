# Empty dependencies file for bvq_algebra.
# This may be replaced when dependencies are built.
