
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebra/boolean_value.cc" "src/algebra/CMakeFiles/bvq_algebra.dir/boolean_value.cc.o" "gcc" "src/algebra/CMakeFiles/bvq_algebra.dir/boolean_value.cc.o.d"
  "/root/repo/src/algebra/parenthesis_grammar.cc" "src/algebra/CMakeFiles/bvq_algebra.dir/parenthesis_grammar.cc.o" "gcc" "src/algebra/CMakeFiles/bvq_algebra.dir/parenthesis_grammar.cc.o.d"
  "/root/repo/src/algebra/word_algebra.cc" "src/algebra/CMakeFiles/bvq_algebra.dir/word_algebra.cc.o" "gcc" "src/algebra/CMakeFiles/bvq_algebra.dir/word_algebra.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bvq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/bvq_db.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/bvq_logic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
