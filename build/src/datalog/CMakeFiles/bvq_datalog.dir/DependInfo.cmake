
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datalog/datalog.cc" "src/datalog/CMakeFiles/bvq_datalog.dir/datalog.cc.o" "gcc" "src/datalog/CMakeFiles/bvq_datalog.dir/datalog.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bvq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/bvq_db.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
