file(REMOVE_RECURSE
  "libbvq_datalog.a"
)
