file(REMOVE_RECURSE
  "CMakeFiles/bvq_datalog.dir/datalog.cc.o"
  "CMakeFiles/bvq_datalog.dir/datalog.cc.o.d"
  "libbvq_datalog.a"
  "libbvq_datalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bvq_datalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
