# Empty compiler generated dependencies file for bvq_datalog.
# This may be replaced when dependencies are built.
