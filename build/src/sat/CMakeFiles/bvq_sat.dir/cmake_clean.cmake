file(REMOVE_RECURSE
  "CMakeFiles/bvq_sat.dir/cnf.cc.o"
  "CMakeFiles/bvq_sat.dir/cnf.cc.o.d"
  "CMakeFiles/bvq_sat.dir/solver.cc.o"
  "CMakeFiles/bvq_sat.dir/solver.cc.o.d"
  "CMakeFiles/bvq_sat.dir/tseitin.cc.o"
  "CMakeFiles/bvq_sat.dir/tseitin.cc.o.d"
  "libbvq_sat.a"
  "libbvq_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bvq_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
