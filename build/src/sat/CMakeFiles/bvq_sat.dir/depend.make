# Empty dependencies file for bvq_sat.
# This may be replaced when dependencies are built.
