file(REMOVE_RECURSE
  "libbvq_sat.a"
)
