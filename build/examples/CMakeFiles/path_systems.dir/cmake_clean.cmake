file(REMOVE_RECURSE
  "CMakeFiles/path_systems.dir/path_systems.cpp.o"
  "CMakeFiles/path_systems.dir/path_systems.cpp.o.d"
  "path_systems"
  "path_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
