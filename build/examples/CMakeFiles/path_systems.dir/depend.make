# Empty dependencies file for path_systems.
# This may be replaced when dependencies are built.
