# Empty dependencies file for qbf_pfp.
# This may be replaced when dependencies are built.
