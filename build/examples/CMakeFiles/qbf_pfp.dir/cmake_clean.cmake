file(REMOVE_RECURSE
  "CMakeFiles/qbf_pfp.dir/qbf_pfp.cpp.o"
  "CMakeFiles/qbf_pfp.dir/qbf_pfp.cpp.o.d"
  "qbf_pfp"
  "qbf_pfp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qbf_pfp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
