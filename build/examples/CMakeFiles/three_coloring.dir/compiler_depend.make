# Empty compiler generated dependencies file for three_coloring.
# This may be replaced when dependencies are built.
