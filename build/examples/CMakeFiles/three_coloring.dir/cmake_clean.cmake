file(REMOVE_RECURSE
  "CMakeFiles/three_coloring.dir/three_coloring.cpp.o"
  "CMakeFiles/three_coloring.dir/three_coloring.cpp.o.d"
  "three_coloring"
  "three_coloring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/three_coloring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
