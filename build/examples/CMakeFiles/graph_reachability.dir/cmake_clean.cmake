file(REMOVE_RECURSE
  "CMakeFiles/graph_reachability.dir/graph_reachability.cpp.o"
  "CMakeFiles/graph_reachability.dir/graph_reachability.cpp.o.d"
  "graph_reachability"
  "graph_reachability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_reachability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
