# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;11;bvq_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_model_checking "/root/repo/build/examples/model_checking")
set_tests_properties(example_model_checking PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;12;bvq_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_graph_reachability "/root/repo/build/examples/graph_reachability")
set_tests_properties(example_graph_reachability PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;13;bvq_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_three_coloring "/root/repo/build/examples/three_coloring")
set_tests_properties(example_three_coloring PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;14;bvq_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_qbf_pfp "/root/repo/build/examples/qbf_pfp")
set_tests_properties(example_qbf_pfp PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;15;bvq_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_path_systems "/root/repo/build/examples/path_systems")
set_tests_properties(example_path_systems PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;16;bvq_example;/root/repo/examples/CMakeLists.txt;0;")
