# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/relation_test[1]_include.cmake")
include("/root/repo/build/tests/assignment_set_test[1]_include.cmake")
include("/root/repo/build/tests/database_test[1]_include.cmake")
include("/root/repo/build/tests/logic_test[1]_include.cmake")
include("/root/repo/build/tests/sat_test[1]_include.cmake")
include("/root/repo/build/tests/bounded_eval_test[1]_include.cmake")
include("/root/repo/build/tests/naive_eval_test[1]_include.cmake")
include("/root/repo/build/tests/fixpoint_test[1]_include.cmake")
include("/root/repo/build/tests/certificate_test[1]_include.cmake")
include("/root/repo/build/tests/eso_test[1]_include.cmake")
include("/root/repo/build/tests/ifp_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/containment_test[1]_include.cmake")
include("/root/repo/build/tests/edge_case_test[1]_include.cmake")
include("/root/repo/build/tests/pebble_game_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/differential_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/datalog_test[1]_include.cmake")
include("/root/repo/build/tests/mucalc_test[1]_include.cmake")
include("/root/repo/build/tests/reductions_test[1]_include.cmake")
include("/root/repo/build/tests/algebra_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
