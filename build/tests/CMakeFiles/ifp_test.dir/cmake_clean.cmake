file(REMOVE_RECURSE
  "CMakeFiles/ifp_test.dir/ifp_test.cc.o"
  "CMakeFiles/ifp_test.dir/ifp_test.cc.o.d"
  "ifp_test"
  "ifp_test.pdb"
  "ifp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
