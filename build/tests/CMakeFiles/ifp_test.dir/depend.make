# Empty dependencies file for ifp_test.
# This may be replaced when dependencies are built.
