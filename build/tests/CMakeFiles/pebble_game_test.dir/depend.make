# Empty dependencies file for pebble_game_test.
# This may be replaced when dependencies are built.
