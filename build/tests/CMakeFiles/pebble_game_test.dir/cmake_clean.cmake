file(REMOVE_RECURSE
  "CMakeFiles/pebble_game_test.dir/pebble_game_test.cc.o"
  "CMakeFiles/pebble_game_test.dir/pebble_game_test.cc.o.d"
  "pebble_game_test"
  "pebble_game_test.pdb"
  "pebble_game_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pebble_game_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
