# Empty compiler generated dependencies file for assignment_set_test.
# This may be replaced when dependencies are built.
