file(REMOVE_RECURSE
  "CMakeFiles/assignment_set_test.dir/assignment_set_test.cc.o"
  "CMakeFiles/assignment_set_test.dir/assignment_set_test.cc.o.d"
  "assignment_set_test"
  "assignment_set_test.pdb"
  "assignment_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assignment_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
