file(REMOVE_RECURSE
  "CMakeFiles/mucalc_test.dir/mucalc_test.cc.o"
  "CMakeFiles/mucalc_test.dir/mucalc_test.cc.o.d"
  "mucalc_test"
  "mucalc_test.pdb"
  "mucalc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mucalc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
