# Empty compiler generated dependencies file for mucalc_test.
# This may be replaced when dependencies are built.
