# Empty dependencies file for eso_test.
# This may be replaced when dependencies are built.
