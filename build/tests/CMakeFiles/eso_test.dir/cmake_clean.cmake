file(REMOVE_RECURSE
  "CMakeFiles/eso_test.dir/eso_test.cc.o"
  "CMakeFiles/eso_test.dir/eso_test.cc.o.d"
  "eso_test"
  "eso_test.pdb"
  "eso_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eso_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
