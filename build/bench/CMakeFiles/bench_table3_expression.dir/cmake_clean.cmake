file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_expression.dir/bench_table3_expression.cpp.o"
  "CMakeFiles/bench_table3_expression.dir/bench_table3_expression.cpp.o.d"
  "bench_table3_expression"
  "bench_table3_expression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_expression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
