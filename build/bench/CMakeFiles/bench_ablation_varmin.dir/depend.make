# Empty dependencies file for bench_ablation_varmin.
# This may be replaced when dependencies are built.
