file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_varmin.dir/bench_ablation_varmin.cpp.o"
  "CMakeFiles/bench_ablation_varmin.dir/bench_ablation_varmin.cpp.o.d"
  "bench_ablation_varmin"
  "bench_ablation_varmin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_varmin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
