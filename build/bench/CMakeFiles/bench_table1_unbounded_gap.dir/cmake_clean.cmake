file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_unbounded_gap.dir/bench_table1_unbounded_gap.cpp.o"
  "CMakeFiles/bench_table1_unbounded_gap.dir/bench_table1_unbounded_gap.cpp.o.d"
  "bench_table1_unbounded_gap"
  "bench_table1_unbounded_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_unbounded_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
