# Empty compiler generated dependencies file for bench_table1_unbounded_gap.
# This may be replaced when dependencies are built.
