# Empty dependencies file for bench_table2_combined.
# This may be replaced when dependencies are built.
