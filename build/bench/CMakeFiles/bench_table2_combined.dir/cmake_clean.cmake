file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_combined.dir/bench_table2_combined.cpp.o"
  "CMakeFiles/bench_table2_combined.dir/bench_table2_combined.cpp.o.d"
  "bench_table2_combined"
  "bench_table2_combined.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_combined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
