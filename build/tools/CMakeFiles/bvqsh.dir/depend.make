# Empty dependencies file for bvqsh.
# This may be replaced when dependencies are built.
