file(REMOVE_RECURSE
  "CMakeFiles/bvqsh.dir/bvqsh.cc.o"
  "CMakeFiles/bvqsh.dir/bvqsh.cc.o.d"
  "bvqsh"
  "bvqsh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bvqsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
