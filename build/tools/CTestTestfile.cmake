# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bvqsh_demo "/root/repo/build/tools/bvqsh" "/root/repo/data/demo.bvqsh")
set_tests_properties(bvqsh_demo PROPERTIES  WORKING_DIRECTORY "/root/repo" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
