// Table 2 of the paper (combined complexity of bounded-variable queries),
// reproduced as scaling behaviour. One series per table row:
//
//   FO^k  : PTIME-complete  -> Path-Systems instances (Proposition 3.2's
//           hard family!) where BOTH the database and the FO^3 formula
//           grow with n; time stays polynomial.
//   FP^k  : NP cap co-NP    -> alternating fixpoint families: the naive
//           nested evaluation performs ~n^{kl} body evaluations, while
//           checking a Theorem 3.5 certificate needs only ~l*n^k; the
//           counters expose both.
//   ESO^k : NP-complete     -> 3-colorability via grounding + CDCL; time
//           grows with n but the grounding stays polynomial (Lemma 3.6's
//           cell-counting at work: so_cells is polynomial in n).
//   PFP^k : PSPACE-complete -> combined hardness via QBF (exponential in
//           the prefix length l over the FIXED database B0) next to
//           polynomial data-side scaling of a fixed PFP query.

#include <benchmark/benchmark.h>

#include "bench_threads.h"
#include "common/rng.h"
#include "db/generators.h"
#include "eval/bounded_eval.h"
#include "eval/certificate.h"
#include "eval/eso_eval.h"
#include "logic/parser.h"
#include "reductions/path_systems.h"
#include "reductions/qbf.h"

namespace {

using namespace bvq;

// --- FO^k row ------------------------------------------------------------------

void BM_FOk_PathSystems(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(7 + n);
  PathSystem ps = RandomPathSystem(n, 1.2, 2, 2, rng);
  Database db = ps.ToDatabase();
  // Combined complexity: the formula is unfolded n times, so input size
  // ~ |B| + |e| both grow with n.
  FormulaPtr sentence = PathSystemSentence(n);
  bool accepted = false;
  for (auto _ : state) {
    BoundedEvaluator eval(db, 3, bvq_bench::EvalOptions());
    auto r = eval.Evaluate(sentence);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    accepted = !r->Empty();
    benchmark::DoNotOptimize(r);
  }
  if (accepted != ps.Accepts()) state.SkipWithError("wrong answer");
  state.counters["formula_size"] = static_cast<double>(sentence->Size());
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_FOk_PathSystems)
    ->RangeMultiplier(2)
    ->Range(4, 128)
    ->Complexity()
    ->Unit(benchmark::kMicrosecond);

// --- FP^k row ------------------------------------------------------------------

// Alternating families over 3 variables with alternation depth l = 1..3.
FormulaPtr AlternatingFamily(std::size_t depth) {
  switch (depth) {
    case 1:
      // reach-to-P
      return *ParseFormula(
          "[lfp T(x1) . P(x1) | exists x2 . (E(x1,x2) & T(x2))](x1)");
    case 2:
      // Buchi: a path visiting P infinitely often
      return *ParseFormula(
          "[gfp S(x1) . [lfp T(x2) . exists x3 . (E(x2,x3) & "
          "(P(x3) & S(x3) | T(x3)))](x1)](x1)");
    default:
      // depth 3: mu-nu-mu
      return *ParseFormula(
          "[lfp U(x1) . Q(x1) | [gfp S(x1) . [lfp T(x2) . exists x3 . "
          "(E(x2,x3) & (P(x3) & S(x3) & U(x3) | T(x3)))](x1)](x1)](x1)");
  }
}

Database AlternationDb(std::size_t n, uint64_t seed) {
  // A long path with P everywhere and Q at the sink makes every level of
  // the alternating family converge slowly: the inner reach fixpoints
  // walk the path (Theta(n) stages) and the outer gfp sheds one node per
  // stage, so naive nesting costs Theta(n^2) body evaluations at depth 2
  // and more at depth 3 — the n^{kl} behaviour Section 3.2 starts from.
  (void)seed;
  Database db(n);
  // Path with a self-loop at the sink (so infinite runs exist and the
  // greatest fixpoints have non-trivial values/witnesses).
  Relation path = PathGraph(n);
  path.Insert({static_cast<Value>(n - 1), static_cast<Value>(n - 1)});
  Status s = db.AddRelation("E", path);
  assert(s.ok());
  // P holds everywhere except the sink, so the outer greatest fixpoints
  // shed one node per stage (slow convergence) instead of accepting
  // immediately.
  RelationBuilder p(1);
  for (std::size_t v = 0; v + 1 < n; ++v) {
    Value val = static_cast<Value>(v);
    p.Add(&val);
  }
  s = db.AddRelation("P", p.Build());
  assert(s.ok());
  RelationBuilder q(1);
  Value sink = static_cast<Value>(n - 1);
  q.Add(&sink);
  s = db.AddRelation("Q", q.Build());
  assert(s.ok());
  (void)s;
  return db;
}

void BM_FPk_NaiveNestedEvaluation(benchmark::State& state) {
  const std::size_t depth = static_cast<std::size_t>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  Database db = AlternationDb(n, 100 + depth);
  FormulaPtr f = AlternatingFamily(depth);
  std::size_t iters = 0;
  for (auto _ : state) {
    BoundedEvaluator eval(db, 3, bvq_bench::EvalOptions());
    auto r = eval.Evaluate(f);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    iters = eval.stats().fixpoint_iterations;
    benchmark::DoNotOptimize(r);
  }
  state.counters["alternation_depth"] = static_cast<double>(depth);
  state.counters["body_evals"] = static_cast<double>(iters);
}
BENCHMARK(BM_FPk_NaiveNestedEvaluation)
    ->ArgsProduct({{1, 2, 3}, {8, 16, 24}})
    ->Unit(benchmark::kMicrosecond);

void BM_FPk_CertificateVerification(benchmark::State& state) {
  // Theorem 3.5: the verifier's body evaluations are bounded by ~l * n^k,
  // an exponential improvement over n^{kl} naive nesting. Certificate
  // generation (the "guess") happens once, outside the timed region.
  const std::size_t depth = static_cast<std::size_t>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  Database db = AlternationDb(n, 100 + depth);
  FormulaPtr f = AlternatingFamily(depth);
  CertificateSystem sys(db, 3);
  auto cert = sys.Generate(f);
  if (!cert.ok()) {
    state.SkipWithError(cert.status().ToString().c_str());
    return;
  }
  std::size_t body_evals = 0;
  for (auto _ : state) {
    sys.ResetStats();
    auto r = sys.Verify(f, *cert);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    body_evals = sys.stats().body_evals;
    benchmark::DoNotOptimize(r);
  }
  state.counters["alternation_depth"] = static_cast<double>(depth);
  state.counters["body_evals"] = static_cast<double>(body_evals);
  state.counters["witness_sets"] =
      static_cast<double>(sys.stats().witness_sets);
}
BENCHMARK(BM_FPk_CertificateVerification)
    ->ArgsProduct({{1, 2, 3}, {8, 16, 24}})
    ->Unit(benchmark::kMicrosecond);

// --- ESO^k row -------------------------------------------------------------------

void BM_ESOk_ThreeColoring(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(13);
  Database db(n);
  Status s = db.AddRelation(
      "E", RandomGraph(n, 3.0 / static_cast<double>(n), rng));
  assert(s.ok());
  (void)s;
  FormulaPtr query = *ParseFormula(
      "exists2 R/1 . exists2 G/1 . exists2 B/1 . "
      "(forall x1 . (R(x1) | G(x1) | B(x1))) & "
      "(forall x1 . forall x2 . (E(x1,x2) -> "
      "!(R(x1) & R(x2)) & !(G(x1) & G(x2)) & !(B(x1) & B(x2))))");
  std::size_t cells = 0, clauses = 0;
  for (auto _ : state) {
    EsoEvaluator eval(db, 2);
    auto r = eval.HoldsSentence(query);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    cells = eval.stats().so_cells;
    clauses = eval.stats().cnf_clauses;
    benchmark::DoNotOptimize(r);
  }
  state.counters["so_cells"] = static_cast<double>(cells);
  state.counters["cnf_clauses"] = static_cast<double>(clauses);
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_ESOk_ThreeColoring)
    ->RangeMultiplier(2)
    ->Range(8, 128)
    ->Complexity()
    ->Unit(benchmark::kMillisecond);

// --- PFP^k row -------------------------------------------------------------------

void BM_PFPk_QbfCombinedHardness(benchmark::State& state) {
  // Fixed database B0; PFP^1 formulas from QBFs of growing prefix length.
  // Time is exponential in l: this is the PSPACE-completeness row.
  const std::size_t l = static_cast<std::size_t>(state.range(0));
  // The parity family forces both branches at every level: the canonical
  // exponential case.
  Qbf qbf = ParityQbf(l);
  auto pfp = QbfToPfp(qbf);
  if (!pfp.ok()) {
    state.SkipWithError(pfp.status().ToString().c_str());
    return;
  }
  Database b0 = QbfFixedDatabase();
  std::size_t stages = 0;
  for (auto _ : state) {
    BoundedEvaluator eval(b0, 1, bvq_bench::EvalOptions());
    auto r = eval.Evaluate(*pfp);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    stages = eval.stats().fixpoint_iterations;
    benchmark::DoNotOptimize(r);
  }
  state.counters["prefix_len"] = static_cast<double>(l);
  state.counters["pfp_stages"] = static_cast<double>(stages);
}
BENCHMARK(BM_PFPk_QbfCombinedHardness)
    ->DenseRange(2, 14, 2)
    ->Unit(benchmark::kMicrosecond);

void BM_PFPk_DataSideIsPolynomial(benchmark::State& state) {
  // The same language with a FIXED query: polynomial in n (the data
  // complexity the combined complexity collapses toward).
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(23);
  Database db(n);
  Status s = db.AddRelation(
      "E", RandomGraph(n, 4.0 / static_cast<double>(n), rng));
  assert(s.ok());
  (void)s;
  FormulaPtr query = *ParseFormula(
      "[pfp T(x1,x2) . E(x1,x2) | exists x3 . (E(x1,x3) & exists x1 . "
      "(x1 = x3 & T(x1,x2)))](x1,x2)");
  for (auto _ : state) {
    BoundedEvaluator eval(db, 3, bvq_bench::EvalOptions());
    auto r = eval.Evaluate(query);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_PFPk_DataSideIsPolynomial)
    ->RangeMultiplier(2)
    ->Range(8, 64)
    ->Complexity()
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BVQ_BENCHMARK_MAIN();
