// Table 3 of the paper (expression complexity of bounded-variable
// queries): the database is FIXED and only the expression grows.
//
//   FO^k  : drops from PTIME-complete (combined) to ALOGTIME — over a
//           fixed database an FO^k query is an expression over a finite
//           algebra (Lemma 4.2). Series: per-node evaluation cost of the
//           precomputed word-algebra evaluator stays constant and tiny as
//           |e| grows, next to the general evaluator whose per-node cost
//           carries n^k-sized bitset work; the Boolean formula value
//           problem (the ALOGTIME-hardness witness of Theorem 4.4) is
//           evaluated through its FO^1 reduction.
//   ESO^k : stays NP-hard even over a one-element database (Theorem 4.5):
//           random 3-CNF near the phase transition, reduced to ESO and
//           solved by grounding + CDCL; time grows superpolynomially with
//           the variable count.
//   PFP^k : stays PSPACE-hard over the fixed B0 (Theorem 4.6): QBF
//           expression sweep, exponential in the prefix length.

#include <benchmark/benchmark.h>

#include "algebra/boolean_value.h"
#include "bench_threads.h"
#include "algebra/word_algebra.h"
#include "common/rng.h"
#include "db/generators.h"
#include "eval/bounded_eval.h"
#include "eval/eso_eval.h"
#include "logic/random_formula.h"
#include "reductions/qbf.h"
#include "reductions/sat_to_eso.h"
#include "sat/cnf.h"

namespace {

using namespace bvq;

Database FixedDb() {
  // The fixed database for the FO^k rows: 2 elements, one binary and one
  // unary relation (n^k = 4 for k = 2).
  Database db(2);
  Status s =
      db.AddRelation("E", Relation::FromTuples(2, {{0, 1}, {1, 0}, {1, 1}}));
  assert(s.ok());
  s = db.AddRelation("P", Relation::FromTuples(1, {{1}}));
  assert(s.ok());
  (void)s;
  return db;
}

FormulaPtr RandomFoFormula(std::size_t size, uint64_t seed) {
  Rng rng(seed);
  RandomFormulaOptions opts;
  opts.num_vars = 2;
  opts.max_size = size;
  opts.predicates = {{"E", 2}, {"P", 1}};
  return RandomFormula(opts, rng);
}

void BM_FOk_FixedDb_WordAlgebra(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  Database db = FixedDb();
  FormulaPtr f = RandomFoFormula(size, size);
  auto algebra = WordAlgebraEvaluator::Create(db, 2);
  if (!algebra.ok()) {
    state.SkipWithError("create failed");
    return;
  }
  for (auto _ : state) {
    auto r = algebra->Evaluate(f);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.counters["formula_size"] = static_cast<double>(f->Size());
  state.SetComplexityN(static_cast<int64_t>(f->Size()));
}
BENCHMARK(BM_FOk_FixedDb_WordAlgebra)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Complexity(benchmark::oN)
    ->Unit(benchmark::kMicrosecond);

void BM_FOk_FixedDb_GeneralEvaluator(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  Database db = FixedDb();
  FormulaPtr f = RandomFoFormula(size, size);
  for (auto _ : state) {
    BoundedEvaluator eval(db, 2, bvq_bench::EvalOptions());
    auto r = eval.Evaluate(f);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.counters["formula_size"] = static_cast<double>(f->Size());
  state.SetComplexityN(static_cast<int64_t>(f->Size()));
}
BENCHMARK(BM_FOk_FixedDb_GeneralEvaluator)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Complexity(benchmark::oN)
    ->Unit(benchmark::kMicrosecond);

void BM_FOk_BooleanFormulaValue(benchmark::State& state) {
  // Theorem 4.4's hardness witness, run through its own reduction: a
  // constant Boolean formula becomes an FO^1 sentence over the fixed
  // database ({0,1}, P={1}).
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  Rng rng(size);
  FormulaPtr f = RandomBooleanFormula(size, rng);
  auto sentence = BooleanFormulaToFoSentence(f);
  if (!sentence.ok()) {
    state.SkipWithError("reduction failed");
    return;
  }
  Database db = BooleanValueDatabase();
  auto algebra = WordAlgebraEvaluator::Create(db, 1);
  bool expected = *EvalBooleanFormula(f);
  for (auto _ : state) {
    auto r = algebra->Evaluate(*sentence);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    if ((*r != 0) != expected) state.SkipWithError("wrong value");
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(static_cast<int64_t>(f->Size()));
}
BENCHMARK(BM_FOk_BooleanFormulaValue)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Complexity(benchmark::oN)
    ->Unit(benchmark::kMicrosecond);

void BM_ESOk_FixedDb_Sat(benchmark::State& state) {
  // Theorem 4.5: propositional satisfiability embedded in ESO^k
  // expression complexity. Random 3-CNF at clause ratio 4.2 (near the
  // phase transition), over the one-element database.
  const int num_props = static_cast<int>(state.range(0));
  Rng rng(77 + num_props);
  sat::Cnf cnf;
  cnf.num_vars = num_props;
  const int clauses = static_cast<int>(4.2 * num_props);
  for (int c = 0; c < clauses; ++c) {
    sat::Clause clause;
    for (int j = 0; j < 3; ++j) {
      clause.push_back(sat::Lit(static_cast<int>(rng.Below(num_props)),
                                rng.Bernoulli(0.5)));
    }
    cnf.AddClause(clause);
  }
  auto eso = PropositionalToEso(CnfToFormula(cnf));
  if (!eso.ok()) {
    state.SkipWithError("reduction failed");
    return;
  }
  Database db = TrivialDatabase();
  uint64_t conflicts = 0;
  for (auto _ : state) {
    EsoEvaluator eval(db, 1);
    auto r = eval.HoldsSentence(*eso);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    conflicts = eval.stats().solver.conflicts;
    benchmark::DoNotOptimize(r);
  }
  state.counters["props"] = static_cast<double>(num_props);
  state.counters["conflicts"] = static_cast<double>(conflicts);
}
BENCHMARK(BM_ESOk_FixedDb_Sat)
    ->DenseRange(20, 120, 20)
    ->Unit(benchmark::kMillisecond);

void BM_PFPk_FixedDb_Qbf(benchmark::State& state) {
  // Theorem 4.6: expression complexity of PFP^1 over B0 is PSPACE-hard;
  // evaluation time is exponential in the quantifier prefix length.
  const std::size_t l = static_cast<std::size_t>(state.range(0));
  Rng rng(31 + l);
  Qbf qbf = RandomQbf(l, l + 3, rng);
  auto pfp = QbfToPfp(qbf);
  if (!pfp.ok()) {
    state.SkipWithError("reduction failed");
    return;
  }
  Database b0 = QbfFixedDatabase();
  for (auto _ : state) {
    BoundedEvaluator eval(b0, 1, bvq_bench::EvalOptions());
    auto r = eval.Evaluate(*pfp);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.counters["prefix_len"] = static_cast<double>(l);
  state.counters["formula_size"] = static_cast<double>((*pfp)->Size());
}
BENCHMARK(BM_PFPk_FixedDb_Qbf)
    ->DenseRange(2, 14, 2)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BVQ_BENCHMARK_MAIN();
