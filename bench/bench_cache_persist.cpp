// Restart-prewarm bench: the answer-cache persistence path (DESIGN.md §13)
// measured end to end. Three passes over the same fixpoint query batch:
//
//   cold        fresh process, empty cache (populates it)
//   prewarmed   "restarted" process — a *new* cache and a *new* interner
//               over a reparse of the same database (every version nonce
//               differs, every fingerprint matches), prewarmed from a
//               snapshot of the first cache via the full codec round trip
//               (ExportResolved → encode → decode → Restore → ResolveAgainst)
//   warm        same process, same cache, immediate replay (the ceiling)
//
// The interesting number is how close prewarmed gets to warm: persistence
// is worth shipping only if a restarted server's first batch costs probe
// time, not fixpoint time.
//
// Custom main (not google/benchmark) so it can emit the BENCH_persist.json
// record the perf trajectory is tracked with:
//
//   bench_cache_persist [--n=40] [--reps=3] [--threads=1]
//                       [--out=BENCH_persist.json]
//
// Timing is min-of-reps per pass. Before any number is written, every
// prewarmed and warm answer is asserted byte-identical to a cache-off
// reference run, and the prewarmed pass must actually hit; either failure
// exits 1.

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/resource.h"
#include "common/strings.h"
#include "db/database.h"
#include "db/generators.h"
#include "eval/answer_cache.h"
#include "eval/bounded_eval.h"
#include "eval/cache_snapshot.h"
#include "logic/parser.h"

namespace {

using namespace bvq;

// Same loop-invariant guard as bench_cache_warm: each conjunct costs
// kernel sweeps that a prewarmed hit avoids recomputing after a restart.
const char kInvariantGuard[] =
    "(forall x2 . exists x3 . (E(x2,x3) | x2 = x3)) & "
    "(forall x3 . exists x2 . (E(x2,x3) | x2 = x3)) & "
    "(exists x2 . exists x3 . E(x2,x3)) & "
    "(forall x2 . forall x3 . (E(x2,x3) -> !(x2 = x3)))";

struct Workload {
  std::string name;
  std::string formula;
};

std::vector<Workload> Workloads() {
  const std::string inv = kInvariantGuard;
  return {
      {"lfp_invariant_guard",
       "[lfp T(x1) . P(x1) | ((exists x2 . (E(x1,x2) & T(x2))) & (" + inv +
           "))](x1)"},
      {"nested_lfp_gfp",
       "[gfp G(x1) . (exists x2 . (E(x1,x2) & G(x2))) & "
       "[lfp T(x2) . P(x2) | exists x3 . (E(x2,x3) & T(x3))](x1) & (" +
           inv + ")](x1)"},
      {"ifp_invariant_guard",
       "[ifp I(x1) . P(x1) | ((exists x2 . (E(x1,x2) & I(x2))) & (" + inv +
           "))](x1)"},
      {"pfp_invariant_guard",
       "[pfp F(x1) . P(x1) | ((exists x2 . (E(x1,x2) & F(x2))) & (" + inv +
           "))](x1)"},
  };
}

Database LongPathDb(std::size_t n) {
  Database db(n);
  Status s = db.AddRelation("E", PathGraph(n));
  assert(s.ok());
  RelationBuilder p(1);
  Value last = static_cast<Value>(n - 1);
  p.Add(&last);
  s = db.AddRelation("P", p.Build());
  assert(s.ok());
  (void)s;
  return db;
}

double MinMs(const std::vector<double>& xs) {
  return *std::min_element(xs.begin(), xs.end());
}

struct PassResult {
  double ms = 0;  // whole-batch wall time
  std::vector<AssignmentSet> answers;
  std::uint64_t cache_hits = 0;
};

PassResult RunBatch(const Database& db, const std::vector<FormulaPtr>& batch,
                    AnswerCache* cache, std::size_t threads) {
  BoundedEvalOptions opts;
  opts.num_threads = threads;
  opts.answer_cache = cache;
  opts.cross_query_cache = cache != nullptr;
  PassResult out;
  const auto start = std::chrono::steady_clock::now();
  for (const FormulaPtr& f : batch) {
    BoundedEvaluator eval(db, 3, opts);
    auto result = eval.Evaluate(f);
    if (!result.ok()) {
      std::fprintf(stderr, "eval failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    out.answers.push_back(*result);
    out.cache_hits += eval.stats().cache_hits;
  }
  const auto stop = std::chrono::steady_clock::now();
  out.ms = std::chrono::duration<double, std::milli>(stop - start).count();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = 40;
  std::size_t reps = 3;
  std::size_t threads = 1;
  std::string out_path = "BENCH_persist.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&arg](const char* name) {
      return arg.substr(std::string(name).size());
    };
    bool ok = true;
    if (arg.rfind("--n=", 0) == 0) {
      ok = ParseSizeT(value_of("--n="), &n);
    } else if (arg.rfind("--reps=", 0) == 0) {
      ok = ParseSizeT(value_of("--reps="), &reps);
    } else if (arg.rfind("--threads=", 0) == 0) {
      ok = ParseSizeT(value_of("--threads="), &threads);
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = value_of("--out=");
    } else {
      ok = false;
    }
    if (!ok) {
      std::fprintf(stderr,
                   "usage: bench_cache_persist [--n=N] [--reps=R] "
                   "[--threads=T] [--out=PATH]\n");
      return 1;
    }
  }
  if (reps == 0) reps = 1;

  Database db = LongPathDb(n);
  std::vector<FormulaPtr> batch;
  std::vector<std::string> names;
  for (const Workload& w : Workloads()) {
    auto f = ParseFormula(w.formula);
    if (!f.ok()) {
      std::fprintf(stderr, "parse failed (%s): %s\n", w.name.c_str(),
                   f.status().ToString().c_str());
      return 1;
    }
    batch.push_back(*f);
    names.push_back(w.name);
  }

  // The seed path every cached pass must reproduce byte for byte.
  const PassResult reference = RunBatch(db, batch, nullptr, threads);

  std::vector<double> cold_times, prewarmed_times, warm_times, codec_times;
  PassResult prewarmed_last, warm_last;
  std::uint64_t prewarmed_hits = 0;
  std::size_t snapshot_bytes = 0, restored_entries = 0;
  bool all_identical = true;
  for (std::size_t r = 0; r < reps; ++r) {
    ResourceGovernor governor;
    AnswerCacheOptions cache_options;
    cache_options.governor = &governor;
    AnswerCache cache(cache_options);
    const PassResult cold = RunBatch(db, batch, &cache, threads);
    cold_times.push_back(cold.ms);

    // The restart: export → codec round trip → restore into a new cache,
    // resolved against a reparse (new versions, same fingerprints). The
    // codec time is tracked separately — it is the price of the prewarm.
    auto reparsed = ParseDatabase(db.ToString());
    if (!reparsed.ok()) {
      std::fprintf(stderr, "reparse failed: %s\n",
                   reparsed.status().ToString().c_str());
      return 1;
    }
    ResourceGovernor governor2;
    AnswerCacheOptions options2;
    options2.governor = &governor2;
    AnswerCache restarted(options2);
    const auto codec_start = std::chrono::steady_clock::now();
    const std::string encoded = EncodeCacheSnapshot(cache.ExportResolved(db));
    auto decoded = DecodeCacheSnapshot(encoded);
    if (!decoded.ok()) {
      std::fprintf(stderr, "decode failed: %s\n",
                   decoded.status().ToString().c_str());
      return 1;
    }
    restarted.Restore(std::move(*decoded));
    restored_entries = restarted.ResolveAgainst(*reparsed);
    const auto codec_stop = std::chrono::steady_clock::now();
    codec_times.push_back(
        std::chrono::duration<double, std::milli>(codec_stop - codec_start)
            .count());
    snapshot_bytes = encoded.size();
    if (restored_entries == 0) {
      std::fprintf(stderr, "prewarm resolved no entries\n");
      return 1;
    }

    const PassResult prewarmed =
        RunBatch(*reparsed, batch, &restarted, threads);
    prewarmed_times.push_back(prewarmed.ms);
    prewarmed_hits = prewarmed.cache_hits;

    const PassResult warm = RunBatch(db, batch, &cache, threads);
    warm_times.push_back(warm.ms);

    for (std::size_t q = 0; q < batch.size(); ++q) {
      all_identical = all_identical &&
                      cold.answers[q] == reference.answers[q] &&
                      prewarmed.answers[q] == reference.answers[q] &&
                      warm.answers[q] == reference.answers[q];
    }
    prewarmed_last = prewarmed;
    warm_last = warm;
  }
  const double cold_ms = MinMs(cold_times);
  const double prewarmed_ms = MinMs(prewarmed_times);
  const double warm_ms = MinMs(warm_times);
  const double codec_ms = MinMs(codec_times);
  const double speedup = prewarmed_ms > 0 ? cold_ms / prewarmed_ms : 0;

  std::printf(
      "batch of %zu queries on n=%zu: cold %8.3f ms   prewarmed %8.3f ms   "
      "warm %8.3f ms   codec %6.3f ms   cold-over-prewarmed %5.2fx   "
      "prewarmed hits %llu   snapshot %zu B   %s\n",
      batch.size(), n, cold_ms, prewarmed_ms, warm_ms, codec_ms, speedup,
      static_cast<unsigned long long>(prewarmed_hits), snapshot_bytes,
      all_identical ? "identical" : "MISMATCH");
  for (std::size_t q = 0; q < batch.size(); ++q) {
    std::printf("  %-22s %s\n", names[q].c_str(),
                prewarmed_last.answers[q] == reference.answers[q]
                    ? "identical"
                    : "MISMATCH");
  }

  std::string json = "{\n  \"bench\": \"cache_persist\",\n";
  json += "  \"config\": {\n";
  json += "    \"domain_size\": " + std::to_string(n) + ",\n";
  json += "    \"k\": 3,\n";
  json += "    \"threads\": " + std::to_string(threads) + ",\n";
  json += "    \"reps\": " + std::to_string(reps) + ",\n";
  json += "    \"queries\": " + std::to_string(batch.size()) + ",\n";
  json += "    \"memo\": true,\n    \"cross_query_cache\": true\n  },\n";
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "  \"cold_ms\": %.4f,\n  \"prewarmed_ms\": %.4f,\n"
      "  \"warm_ms\": %.4f,\n  \"off_ms\": %.4f,\n  \"codec_ms\": %.4f,\n"
      "  \"speedup\": %.3f,\n  \"prewarmed_cache_hits\": %llu,\n"
      "  \"restored_entries\": %zu,\n  \"snapshot_bytes\": %zu,\n"
      "  \"identical\": %s,\n",
      cold_ms, prewarmed_ms, warm_ms, reference.ms, codec_ms, speedup,
      static_cast<unsigned long long>(prewarmed_hits), restored_entries,
      snapshot_bytes, all_identical ? "true" : "false");
  json += buf;
  json += "  \"workloads\": [\n";
  for (std::size_t q = 0; q < batch.size(); ++q) {
    json += "    {\"name\": \"" + names[q] + "\", \"identical\": " +
            (prewarmed_last.answers[q] == reference.answers[q] ? "true"
                                                               : "false") +
            std::string(q + 1 < batch.size() ? "}," : "}") + "\n";
  }
  json += "  ]\n}\n";

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << json;
  std::printf("wrote %s\n", out_path.c_str());
  if (prewarmed_hits == 0) {
    std::fprintf(stderr, "prewarmed pass never hit the cache\n");
    return 1;
  }
  return all_identical ? 0 : 1;
}
