// Shared --threads=N / --memo=0|1 handling for the benchmark harnesses.
//
// google/benchmark rejects flags it does not recognise, so BVQ_BENCHMARK_MAIN
// strips --threads=N and --memo=0|1 out of argv before handing the rest to
// the library and records the values for EvalOptions(). The default of 1
// thread runs the exact legacy serial path, so existing series remain
// comparable; pass --threads=0 for auto (hardware concurrency) or an
// explicit worker count. --memo=0 disables the dependency-aware subformula
// memo (the ablation switch; default on). Results are byte-identical for
// every combination (see DESIGN.md, "Threading model & determinism" and
// "Memoization & invariant hoisting") — only the timings move.

#ifndef BVQ_BENCH_BENCH_THREADS_H_
#define BVQ_BENCH_BENCH_THREADS_H_

#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdlib>
#include <cstring>

#include "eval/bounded_eval.h"

namespace bvq_bench {

inline std::size_t& ThreadsFlag() {
  static std::size_t threads = 1;
  return threads;
}

inline bool& MemoFlag() {
  static bool memo = true;
  return memo;
}

inline void ParseThreadsFlag(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      ThreadsFlag() =
          static_cast<std::size_t>(std::strtoull(argv[i] + 10, nullptr, 10));
    } else if (std::strncmp(argv[i], "--memo=", 7) == 0) {
      MemoFlag() = std::strtoull(argv[i] + 7, nullptr, 10) != 0;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
}

// Evaluator options carrying the --threads / --memo values; benches pass
// this to every BoundedEvaluator so the flags reach the engine.
inline bvq::BoundedEvalOptions EvalOptions() {
  bvq::BoundedEvalOptions options;
  options.num_threads = ThreadsFlag();
  options.memo = MemoFlag();
  return options;
}

}  // namespace bvq_bench

#define BVQ_BENCHMARK_MAIN()                                      \
  int main(int argc, char** argv) {                               \
    bvq_bench::ParseThreadsFlag(&argc, argv);                     \
    ::benchmark::Initialize(&argc, argv);                         \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {   \
      return 1;                                                   \
    }                                                             \
    ::benchmark::RunSpecifiedBenchmarks();                        \
    ::benchmark::Shutdown();                                      \
    return 0;                                                     \
  }                                                               \
  int main(int, char**)

#endif  // BVQ_BENCH_BENCH_THREADS_H_
