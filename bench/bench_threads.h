// Shared --threads=N / --memo=0|1 handling for the benchmark harnesses.
//
// google/benchmark rejects flags it does not recognise, so BVQ_BENCHMARK_MAIN
// strips --threads=N and --memo=0|1 out of argv before handing the rest to
// the library and records the values for EvalOptions(). The default of 1
// thread runs the exact legacy serial path, so existing series remain
// comparable; pass --threads=0 for auto (hardware concurrency) or an
// explicit worker count. --memo=0 disables the dependency-aware subformula
// memo (the ablation switch; default on). Results are byte-identical for
// every combination (see DESIGN.md, "Threading model & determinism" and
// "Memoization & invariant hoisting") — only the timings move.
//
// --deadline-ms=N / --mem-budget-mb=N arm a ResourceGovernor shared by all
// governed iterations (default: off) so a bench configuration that would
// run away gets cut with DeadlineExceeded / ResourceExhausted instead of
// wedging a CI run. The governor adds its per-node token polls to the
// measured path, so leave both at 0 for comparable timing series.

#ifndef BVQ_BENCH_BENCH_THREADS_H_
#define BVQ_BENCH_BENCH_THREADS_H_

#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdlib>
#include <cstring>

#include "common/resource.h"
#include "eval/bounded_eval.h"

namespace bvq_bench {

inline std::size_t& ThreadsFlag() {
  static std::size_t threads = 1;
  return threads;
}

inline bool& MemoFlag() {
  static bool memo = true;
  return memo;
}

inline bvq::ResourceGovernor::Limits& GovernorLimits() {
  static bvq::ResourceGovernor::Limits limits;
  return limits;
}

// The shared governor, or nullptr when no limit flag was passed. The clock
// starts at the first governed evaluation, so a deadline bounds the whole
// bench run, not each iteration.
inline bvq::ResourceGovernor* Governor() {
  const auto& limits = GovernorLimits();
  if (limits.deadline_ms == 0 && limits.mem_budget_bytes == 0) {
    return nullptr;
  }
  static bvq::ResourceGovernor governor(limits);
  return &governor;
}

inline void ParseThreadsFlag(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      ThreadsFlag() =
          static_cast<std::size_t>(std::strtoull(argv[i] + 10, nullptr, 10));
    } else if (std::strncmp(argv[i], "--memo=", 7) == 0) {
      MemoFlag() = std::strtoull(argv[i] + 7, nullptr, 10) != 0;
    } else if (std::strncmp(argv[i], "--deadline-ms=", 14) == 0) {
      GovernorLimits().deadline_ms =
          std::strtoull(argv[i] + 14, nullptr, 10);
    } else if (std::strncmp(argv[i], "--mem-budget-mb=", 16) == 0) {
      GovernorLimits().mem_budget_bytes =
          static_cast<std::size_t>(std::strtoull(argv[i] + 16, nullptr, 10))
          << 20;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
}

// Evaluator options carrying the --threads / --memo / governor values;
// benches pass this to every BoundedEvaluator so the flags reach the engine.
inline bvq::BoundedEvalOptions EvalOptions() {
  bvq::BoundedEvalOptions options;
  options.num_threads = ThreadsFlag();
  options.memo = MemoFlag();
  options.governor = Governor();
  return options;
}

}  // namespace bvq_bench

#define BVQ_BENCHMARK_MAIN()                                      \
  int main(int argc, char** argv) {                               \
    bvq_bench::ParseThreadsFlag(&argc, argv);                     \
    ::benchmark::Initialize(&argc, argv);                         \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {   \
      return 1;                                                   \
    }                                                             \
    ::benchmark::RunSpecifiedBenchmarks();                        \
    ::benchmark::Shutdown();                                      \
    return 0;                                                     \
  }                                                               \
  int main(int, char**)

#endif  // BVQ_BENCH_BENCH_THREADS_H_
