// Serving-layer concurrency bench: what does admission control cost, and
// how fair is the FIFO gate under contention?
//
// Two measurements, emitted to BENCH_serve.json:
//
//  1. Admission overhead: ns per uncontended Admit/Release round trip on a
//     single thread, for an unlimited controller and for one with a budget
//     and cap configured (the Fits() path). This is the per-query tax the
//     serving layer adds on top of evaluation.
//
//  2. Fleet fairness: 1 / 8 / 64 concurrent sessions, each submitting
//     `queries` transitive-closure evaluations through one Server with a
//     concurrency cap low enough that admissions actually queue. Reports
//     aggregate throughput, mean/max end-to-end latency, mean admission
//     queue wait, and the fairness spread — the ratio of the slowest
//     session's mean latency to the fastest's (1.0 = perfectly fair; FIFO
//     should keep this close to 1 even at 64 sessions).
//
//   bench_serve_concurrency [--n=12] [--queries=4] [--lanes=8] [--cap=4]
//                           [--micro-iters=50000] [--out=BENCH_serve.json]
//
// Every served payload is checked against a direct BoundedEvaluator run
// before any number is written; a mismatch aborts with exit code 1.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "common/strings.h"
#include "db/database.h"
#include "db/generators.h"
#include "eval/bounded_eval.h"
#include "logic/parser.h"
#include "serve/admission.h"
#include "serve/server.h"
#include "serve/session.h"

namespace {

using namespace bvq;
using namespace bvq::serve;

constexpr char kTcQuery[] =
    "(x1,x2) [lfp T(x1,x2) . E(x1,x2) | exists x3 . (E(x1,x3) & "
    "exists x1 . (x1 = x3 & T(x1,x2)))](x1,x2)";

Database CycleDb(std::size_t n) {
  Database db(n);
  Status s = db.AddRelation("E", CycleGraph(n));
  if (!s.ok()) {
    std::fprintf(stderr, "db setup failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  return db;
}

double AdmitReleaseNs(AdmissionController& ctl, std::size_t iters) {
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    auto ticket = ctl.Admit(std::size_t{1} << 20);
    if (!ticket.ok()) {
      std::fprintf(stderr, "admission failed: %s\n",
                   ticket.status().ToString().c_str());
      std::exit(1);
    }
    ticket->Release();
  }
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(stop - start).count() /
         static_cast<double>(iters);
}

struct FleetResult {
  std::size_t sessions = 0;
  std::size_t queries_total = 0;
  double wall_ms = 0;
  double mean_latency_ms = 0;
  double max_latency_ms = 0;
  double mean_queue_wait_ms = 0;
  double fairness_spread = 0;  // slowest session mean / fastest session mean
};

FleetResult RunFleet(std::size_t sessions, std::size_t queries, std::size_t n,
                     std::size_t lanes, std::size_t cap,
                     const std::string& expected_payload) {
  ServeOptions so;
  so.executor_threads = lanes;
  so.admission.max_concurrent_queries = cap;
  so.admission.queue_wait_ms = 120'000;
  Server server(so);
  for (std::size_t s = 0; s < sessions; ++s) {
    Status st = server.Open("s" + std::to_string(s), SessionOptions{},
                            CycleDb(n));
    if (!st.ok()) {
      std::fprintf(stderr, "open failed: %s\n", st.ToString().c_str());
      std::exit(1);
    }
  }

  struct PerQuery {
    std::size_t session = 0;
    double latency_ms = 0;
    double queue_wait_ms = 0;
  };
  std::mutex mu;
  std::vector<PerQuery> results;
  results.reserve(sessions * queries);

  const auto wall_start = std::chrono::steady_clock::now();
  for (std::size_t q = 0; q < queries; ++q) {
    for (std::size_t s = 0; s < sessions; ++s) {
      const auto submit = std::chrono::steady_clock::now();
      auto id = server.EvalAsync(
          "s" + std::to_string(s), kTcQuery,
          [&, s, submit](const EvalOutcome& o) {
            const double latency =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - submit)
                    .count();
            if (!o.status.ok() || o.payload != expected_payload) {
              std::fprintf(stderr, "served result wrong on s%zu: %s\n", s,
                           o.status.ToString().c_str());
              std::exit(1);
            }
            std::lock_guard<std::mutex> lock(mu);
            results.push_back({s, latency, o.queue_wait_ms});
          });
      if (!id.ok()) {
        std::fprintf(stderr, "submit failed: %s\n",
                     id.status().ToString().c_str());
        std::exit(1);
      }
    }
  }
  server.Drain();
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - wall_start)
                             .count();

  FleetResult out;
  out.sessions = sessions;
  out.queries_total = results.size();
  out.wall_ms = wall_ms;
  std::vector<double> session_sum(sessions, 0.0);
  std::vector<std::size_t> session_count(sessions, 0);
  for (const PerQuery& r : results) {
    out.mean_latency_ms += r.latency_ms;
    out.max_latency_ms = std::max(out.max_latency_ms, r.latency_ms);
    out.mean_queue_wait_ms += r.queue_wait_ms;
    session_sum[r.session] += r.latency_ms;
    ++session_count[r.session];
  }
  out.mean_latency_ms /= static_cast<double>(results.size());
  out.mean_queue_wait_ms /= static_cast<double>(results.size());
  double fastest = 0, slowest = 0;
  for (std::size_t s = 0; s < sessions; ++s) {
    const double mean = session_sum[s] / static_cast<double>(session_count[s]);
    if (s == 0 || mean < fastest) fastest = mean;
    if (s == 0 || mean > slowest) slowest = mean;
  }
  out.fairness_spread = fastest > 0 ? slowest / fastest : 0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = 12;
  std::size_t queries = 4;
  std::size_t lanes = 8;
  std::size_t cap = 4;
  std::size_t micro_iters = 50'000;
  std::string out_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    bool ok = true;
    if (arg.rfind("--n=", 0) == 0) {
      ok = ParseSizeT(arg.substr(4), &n);
    } else if (arg.rfind("--queries=", 0) == 0) {
      ok = ParseSizeT(arg.substr(10), &queries);
    } else if (arg.rfind("--lanes=", 0) == 0) {
      ok = ParseSizeT(arg.substr(8), &lanes);
    } else if (arg.rfind("--cap=", 0) == 0) {
      ok = ParseSizeT(arg.substr(6), &cap);
    } else if (arg.rfind("--micro-iters=", 0) == 0) {
      ok = ParseSizeT(arg.substr(14), &micro_iters);
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      ok = false;
    }
    if (!ok) {
      std::fprintf(stderr,
                   "usage: bench_serve_concurrency [--n=N] [--queries=Q] "
                   "[--lanes=L] [--cap=C] [--micro-iters=I] [--out=PATH]\n");
      return 1;
    }
  }

  // The reference payload every served query must reproduce byte for byte.
  auto query = ParseQuery(kTcQuery);
  if (!query.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }
  Database db = CycleDb(n);
  BoundedEvaluator direct(db, 3);
  auto expected = direct.EvaluateQuery(*query);
  if (!expected.ok()) {
    std::fprintf(stderr, "direct eval failed: %s\n",
                 expected.status().ToString().c_str());
    return 1;
  }
  const std::string expected_payload = FormatRelation(*expected, 20);

  AdmissionController unlimited;
  const double unlimited_ns = AdmitReleaseNs(unlimited, micro_iters);
  AdmissionOptions bounded_opts;
  bounded_opts.aggregate_mem_budget_bytes = std::size_t{256} << 20;
  bounded_opts.max_concurrent_queries = 64;
  AdmissionController bounded(bounded_opts);
  const double bounded_ns = AdmitReleaseNs(bounded, micro_iters);
  std::printf("admit/release: %7.1f ns unlimited, %7.1f ns bounded "
              "(%zu iters)\n",
              unlimited_ns, bounded_ns, micro_iters);

  std::string json = "{\n  \"bench\": \"serve_concurrency\",\n";
  json += "  \"config\": {\n";
  json += "    \"domain_size\": " + std::to_string(n) + ",\n";
  json += "    \"queries_per_session\": " + std::to_string(queries) + ",\n";
  json += "    \"lanes\": " + std::to_string(lanes) + ",\n";
  json += "    \"cap\": " + std::to_string(cap) + ",\n";
  json += "    \"micro_iters\": " + std::to_string(micro_iters) + "\n  },\n";
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  \"admit_release_ns_unlimited\": %.1f,\n"
                "  \"admit_release_ns_bounded\": %.1f,\n",
                unlimited_ns, bounded_ns);
  json += buf;
  json += "  \"fleets\": [\n";

  const std::size_t fleet_sizes[] = {1, 8, 64};
  for (std::size_t i = 0; i < 3; ++i) {
    const FleetResult r =
        RunFleet(fleet_sizes[i], queries, n, lanes, cap, expected_payload);
    std::printf(
        "%3zu sessions: %4zu queries in %8.2f ms   latency %7.2f ms mean / "
        "%7.2f ms max   queue wait %6.2f ms mean   fairness spread %.2fx\n",
        r.sessions, r.queries_total, r.wall_ms, r.mean_latency_ms,
        r.max_latency_ms, r.mean_queue_wait_ms, r.fairness_spread);
    std::snprintf(
        buf, sizeof(buf),
        "    {\"sessions\": %zu, \"queries\": %zu, \"wall_ms\": %.3f, "
        "\"mean_latency_ms\": %.3f, \"max_latency_ms\": %.3f, "
        "\"mean_queue_wait_ms\": %.3f, \"fairness_spread\": %.3f}%s\n",
        r.sessions, r.queries_total, r.wall_ms, r.mean_latency_ms,
        r.max_latency_ms, r.mean_queue_wait_ms, r.fairness_spread,
        i + 1 < 3 ? "," : "");
    json += buf;
  }
  json += "  ]\n}\n";

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << json;
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
