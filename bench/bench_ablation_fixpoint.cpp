// Ablation B: the design choices inside the fixpoint engines.
//
//   - Footnote 5 of the paper: with monotone (non-alternating) nesting,
//     warm-starting inner fixpoints (kMonotoneReuse) replaces the naive
//     n^{kl} iteration count by ~l*n^k; measured on a nested-lfp family.
//   - Section 3.4 / Theorem 3.8: PFP limit detection by hash history
//     (fast, stores one hash per stage) vs. Floyd tortoise-and-hare (the
//     polynomial-space regime, ~3x the stage evaluations, O(1) memory).
//   - Section 1's application: mu-calculus model checking by a direct
//     state-set engine vs. through the FP^2 translation and the
//     bounded-variable query engine.

#include <benchmark/benchmark.h>

#include "bench_threads.h"
#include "common/rng.h"
#include "db/generators.h"
#include "eval/bounded_eval.h"
#include "logic/parser.h"
#include "mucalc/kripke.h"
#include "mucalc/mucalc.h"
#include "reductions/qbf.h"

namespace {

using namespace bvq;

// Monotone nesting: outer reach-to-P whose step is gated by an inner
// reach-to-S fixpoint (same polarity, so warm starts apply).
FormulaPtr MonotoneNested() {
  return *ParseFormula(
      "[lfp S(x1) . P(x1) | (exists x2 . (E(x1,x2) & S(x2))) & "
      "[lfp U(x2) . S(x2) | exists x3 . (E(x2,x3) & U(x3))](x1)](x1)");
}

Database LongPathDb(std::size_t n) {
  Database db(n);
  Status s = db.AddRelation("E", PathGraph(n));
  assert(s.ok());
  RelationBuilder p(1);
  Value last = static_cast<Value>(n - 1);
  p.Add(&last);
  s = db.AddRelation("P", p.Build());
  assert(s.ok());
  (void)s;
  return db;
}

void BM_Nested_NaiveRecomputation(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Database db = LongPathDb(n);
  FormulaPtr f = MonotoneNested();
  std::size_t iters = 0, hoists = 0;
  for (auto _ : state) {
    BoundedEvaluator eval(db, 3, bvq_bench::EvalOptions());
    auto r = eval.Evaluate(f);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    iters = eval.stats().fixpoint_iterations;
    hoists = eval.stats().invariant_hoists;
    benchmark::DoNotOptimize(r);
  }
  state.counters["body_evals"] = static_cast<double>(iters);
  state.counters["invariant_hoists"] = static_cast<double>(hoists);
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_Nested_NaiveRecomputation)
    ->RangeMultiplier(2)
    ->Range(8, 32)
    ->Complexity()
    ->Unit(benchmark::kMicrosecond);

void BM_Nested_MonotoneReuse(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Database db = LongPathDb(n);
  FormulaPtr f = MonotoneNested();
  BoundedEvalOptions opts = bvq_bench::EvalOptions();
  opts.fixpoint_strategy = FixpointStrategy::kMonotoneReuse;
  std::size_t iters = 0, warm = 0, hoists = 0;
  for (auto _ : state) {
    BoundedEvaluator eval(db, 3, opts);
    auto r = eval.Evaluate(f);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    iters = eval.stats().fixpoint_iterations;
    warm = eval.stats().warm_starts;
    hoists = eval.stats().invariant_hoists;
    benchmark::DoNotOptimize(r);
  }
  state.counters["body_evals"] = static_cast<double>(iters);
  state.counters["warm_starts"] = static_cast<double>(warm);
  state.counters["invariant_hoists"] = static_cast<double>(hoists);
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_Nested_MonotoneReuse)
    ->RangeMultiplier(2)
    ->Range(8, 32)
    ->Complexity()
    ->Unit(benchmark::kMicrosecond);

// --- PFP cycle detection ----------------------------------------------------------

void RunPfpMode(benchmark::State& state, PfpCycleDetection mode) {
  const std::size_t l = static_cast<std::size_t>(state.range(0));
  Rng rng(41 + l);
  Qbf qbf = RandomQbf(l, l + 2, rng);
  auto pfp = QbfToPfp(qbf);
  if (!pfp.ok()) {
    state.SkipWithError("reduction failed");
    return;
  }
  Database b0 = QbfFixedDatabase();
  BoundedEvalOptions opts = bvq_bench::EvalOptions();
  opts.pfp_cycle_detection = mode;
  std::size_t stages = 0;
  for (auto _ : state) {
    BoundedEvaluator eval(b0, 1, opts);
    auto r = eval.Evaluate(*pfp);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    stages = eval.stats().fixpoint_iterations;
    benchmark::DoNotOptimize(r);
  }
  state.counters["stage_evals"] = static_cast<double>(stages);
}

void BM_Pfp_HashHistory(benchmark::State& state) {
  RunPfpMode(state, PfpCycleDetection::kHashHistory);
}
BENCHMARK(BM_Pfp_HashHistory)->DenseRange(2, 10, 2)->Unit(
    benchmark::kMicrosecond);

void BM_Pfp_Floyd(benchmark::State& state) {
  RunPfpMode(state, PfpCycleDetection::kFloyd);
}
// Floyd's 3 stage-evaluations per round compound multiplicatively through
// nested pfps (each outer step re-runs every inner pfp), so the sweep is
// kept short; the hash-history series above runs the same instances to
// l = 10 for contrast.
BENCHMARK(BM_Pfp_Floyd)->DenseRange(2, 6, 2)->Unit(
    benchmark::kMicrosecond);

// --- model checking engines ----------------------------------------------------------

mucalc::MuFormulaPtr BuchiProperty() {
  return *mucalc::ParseMuFormula("nu Z . mu W . <> ((p & Z) | W)");
}

void BM_ModelCheck_Direct(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(51);
  mucalc::KripkeStructure k =
      mucalc::RandomKripke(n, 3.0 / static_cast<double>(n), {"p"}, rng);
  mucalc::ModelChecker mc(k);
  auto f = BuchiProperty();
  for (auto _ : state) {
    auto r = mc.CheckDirect(f);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_ModelCheck_Direct)
    ->RangeMultiplier(2)
    ->Range(8, 128)
    ->Complexity()
    ->Unit(benchmark::kMicrosecond);

void BM_ModelCheck_ViaFp2(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(51);
  mucalc::KripkeStructure k =
      mucalc::RandomKripke(n, 3.0 / static_cast<double>(n), {"p"}, rng);
  mucalc::ModelChecker mc(k);
  auto f = BuchiProperty();
  for (auto _ : state) {
    auto r = mc.CheckViaFp2(f);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_ModelCheck_ViaFp2)
    ->RangeMultiplier(2)
    ->Range(8, 128)
    ->Complexity()
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BVQ_BENCHMARK_MAIN();
