// Shard-scaling bench: does the session-hashing router over N worker
// processes actually buy aggregate throughput on the serving layer's
// many-session workload?
//
// For 1 / 2 / 4 shards, a ShardRouter fork/execs that many real bvqserve
// worker processes (each a full single-process Server with its own executor
// lanes and admission gate — the per-worker resources a deployment would
// give one machine slice), opens `sessions` sessions hashed across the
// fleet, submits `queries` transitive-closure evaluations per session, and
// measures wall time to drain. Reported per shard count: wall ms, aggregate
// throughput (queries/s), and the speedup over the 1-shard run. Emitted to
// BENCH_shard.json along with the host core count: the workload is pure
// compute, so the speedup ceiling is min(shards * lanes, cores) / lanes —
// on a single-core host every fleet size measures ~1.0x and the bench
// degenerates to a router-overhead check (which is still worth pinning).
//
//   bench_shard_scaling [--n=12] [--sessions=64] [--queries=4] [--lanes=2]
//                       [--cap=2] [--bvqserve=PATH] [--out=BENCH_shard.json]
//
// Every served result block is checked byte-for-byte against a direct
// BoundedEvaluator run before any number is written; a mismatch (or a lost
// block) aborts with exit code 1.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "db/database.h"
#include "db/generators.h"
#include "eval/bounded_eval.h"
#include "logic/parser.h"
#include "serve/server.h"
#include "serve/shard.h"

namespace {

using namespace bvq;
using namespace bvq::serve;

constexpr char kTcQuery[] =
    "(x1,x2) [lfp T(x1,x2) . E(x1,x2) | exists x3 . (E(x1,x3) & "
    "exists x1 . (x1 = x3 & T(x1,x2)))](x1,x2)";

// "rel <session> E/2 .." request line for an n-cycle.
std::string CycleRelLine(const std::string& session, std::size_t n) {
  std::string line = StrCat("rel ", session, " E/2");
  for (std::size_t i = 0; i < n; ++i) {
    line += StrCat(" ", i, " ", (i + 1) % n, " ;");
  }
  return line;
}

struct ShardResult {
  std::size_t shards = 0;
  std::size_t queries_total = 0;
  double wall_ms = 0;
  double throughput_qps = 0;
};

ShardResult RunFleet(const std::string& bvqserve, std::size_t shards,
                     std::size_t sessions, std::size_t queries, std::size_t n,
                     std::size_t lanes, std::size_t cap,
                     const std::string& expected_payload) {
  ShardRouter::Options options;
  options.num_shards = shards;
  for (std::size_t s = 0; s < shards; ++s) {
    // Fixed per-worker resources: adding shards adds lanes and admission
    // slots, exactly like adding machines behind a router.
    options.worker_commands.push_back({bvqserve, StrCat("--lanes=", lanes),
                                       StrCat("--max-concurrent=", cap),
                                       "--queue-wait-ms=120000"});
  }
  ShardRouter router(std::move(options));
  Status started = router.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "router start failed: %s\n",
                 started.ToString().c_str());
    std::exit(1);
  }

  std::mutex mu;
  std::vector<std::string> chunks;
  auto client = router.NewClient([&](const std::string& chunk) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.push_back(chunk);
  });

  for (std::size_t s = 0; s < sessions; ++s) {
    const std::string name = StrCat("s", s);
    router.HandleLine(client, StrCat("open ", name, " k=3"));
    router.HandleLine(client, StrCat("domain ", name, " ", n));
    router.HandleLine(client, CycleRelLine(name, n));
  }

  const auto wall_start = std::chrono::steady_clock::now();
  std::size_t next_id = 1;
  for (std::size_t q = 0; q < queries; ++q) {
    for (std::size_t s = 0; s < sessions; ++s) {
      router.HandleLine(
          client, StrCat("eval ", next_id++, " s", s, " ", kTcQuery));
    }
  }
  router.HandleLine(client, "drain");
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - wall_start)
                             .count();

  // Byte-check every block against the direct evaluator's payload.
  const std::size_t total = queries * sessions;
  std::size_t blocks_ok = 0;
  {
    std::lock_guard<std::mutex> lock(mu);
    for (std::size_t id = 1; id <= total; ++id) {
      const std::string expected =
          StrCat("result ", id, " ok\n", expected_payload, "end ", id, "\n");
      for (const std::string& chunk : chunks) {
        if (chunk == expected) {
          ++blocks_ok;
          break;
        }
      }
    }
  }
  if (blocks_ok != total) {
    std::fprintf(stderr,
                 "shard run (%zu shards): %zu of %zu result blocks missing "
                 "or wrong\n",
                 shards, total - blocks_ok, total);
    std::exit(1);
  }
  router.HandleLine(client, "quit");
  router.Shutdown();

  ShardResult out;
  out.shards = shards;
  out.queries_total = total;
  out.wall_ms = wall_ms;
  out.throughput_qps =
      wall_ms > 0 ? static_cast<double>(total) * 1000.0 / wall_ms : 0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = 12;
  std::size_t sessions = 64;
  std::size_t queries = 4;
  std::size_t lanes = 2;
  std::size_t cap = 2;
  std::string out_path = "BENCH_shard.json";
  // Default worker binary: ../tools/bvqserve next to this bench binary.
  std::string bvqserve = argv[0];
  const std::size_t slash = bvqserve.rfind('/');
  bvqserve = (slash == std::string::npos ? std::string(".")
                                         : bvqserve.substr(0, slash)) +
             "/../tools/bvqserve";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    bool ok = true;
    if (arg.rfind("--n=", 0) == 0) {
      ok = ParseSizeT(arg.substr(4), &n);
    } else if (arg.rfind("--sessions=", 0) == 0) {
      ok = ParseSizeT(arg.substr(11), &sessions);
    } else if (arg.rfind("--queries=", 0) == 0) {
      ok = ParseSizeT(arg.substr(10), &queries);
    } else if (arg.rfind("--lanes=", 0) == 0) {
      ok = ParseSizeT(arg.substr(8), &lanes);
    } else if (arg.rfind("--cap=", 0) == 0) {
      ok = ParseSizeT(arg.substr(6), &cap);
    } else if (arg.rfind("--bvqserve=", 0) == 0) {
      bvqserve = arg.substr(11);
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      ok = false;
    }
    if (!ok) {
      std::fprintf(stderr,
                   "usage: bench_shard_scaling [--n=N] [--sessions=S] "
                   "[--queries=Q] [--lanes=L] [--cap=C] [--bvqserve=PATH] "
                   "[--out=PATH]\n");
      return 1;
    }
  }

  // The reference payload every served block must reproduce byte for byte.
  auto query = ParseQuery(kTcQuery);
  if (!query.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }
  Database db(n);
  Status s = db.AddRelation("E", CycleGraph(n));
  if (!s.ok()) {
    std::fprintf(stderr, "db setup failed: %s\n", s.ToString().c_str());
    return 1;
  }
  BoundedEvaluator direct(db, 3);
  auto expected = direct.EvaluateQuery(*query);
  if (!expected.ok()) {
    std::fprintf(stderr, "direct eval failed: %s\n",
                 expected.status().ToString().c_str());
    return 1;
  }
  const std::string expected_payload = FormatRelation(*expected, 20);

  const unsigned cores = std::thread::hardware_concurrency();
  if (cores > 0 && cores < 4 * lanes) {
    std::printf("note: %u host core(s); the compute-bound speedup ceiling "
                "for S shards is min(S*%zu, %u)/%zu\n",
                cores, lanes, cores, lanes);
  }

  std::string json = "{\n  \"bench\": \"shard_scaling\",\n";
  json += "  \"config\": {\n";
  json += "    \"domain_size\": " + std::to_string(n) + ",\n";
  json += "    \"sessions\": " + std::to_string(sessions) + ",\n";
  json += "    \"queries_per_session\": " + std::to_string(queries) + ",\n";
  json += "    \"lanes_per_shard\": " + std::to_string(lanes) + ",\n";
  json += "    \"cap_per_shard\": " + std::to_string(cap) + ",\n";
  json += "    \"host_cores\": " + std::to_string(cores) + "\n  },\n";
  json += "  \"fleets\": [\n";

  const std::size_t shard_counts[] = {1, 2, 4};
  double base_qps = 0;
  char buf[256];
  for (std::size_t i = 0; i < 3; ++i) {
    const ShardResult r = RunFleet(bvqserve, shard_counts[i], sessions,
                                   queries, n, lanes, cap, expected_payload);
    if (i == 0) base_qps = r.throughput_qps;
    const double speedup = base_qps > 0 ? r.throughput_qps / base_qps : 0;
    std::printf(
        "%zu shard(s): %4zu queries in %8.2f ms   %8.1f q/s   %.2fx vs 1 "
        "shard\n",
        r.shards, r.queries_total, r.wall_ms, r.throughput_qps, speedup);
    std::snprintf(buf, sizeof(buf),
                  "    {\"shards\": %zu, \"queries\": %zu, \"wall_ms\": %.3f, "
                  "\"throughput_qps\": %.3f, \"speedup\": %.3f}%s\n",
                  r.shards, r.queries_total, r.wall_ms, r.throughput_qps,
                  speedup, i + 1 < 3 ? "," : "");
    json += buf;
  }
  json += "  ]\n}\n";

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << json;
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
