// Memo ablation: the dependency-aware subformula memo on vs. off
// (BoundedEvalOptions::memo), on fixpoint workloads whose bodies carry a
// non-trivial loop-invariant subtree. Without the memo every iteration
// re-evaluates the invariant conjuncts over the full n^k cube; with it they
// are computed once and every later request is a table hit
// (stats().invariant_hoists counts exactly those).
//
// This harness uses a custom main (not google/benchmark) so it can emit the
// BENCH_memo.json record the perf trajectory is tracked with:
//
//   bench_memo_ablation [--n=40] [--reps=3] [--threads=1]
//                       [--out=BENCH_memo.json]
//
// Timing is min-of-reps per configuration. Every workload asserts that the
// memo-on and memo-off answers are byte-identical before any number is
// written; a mismatch aborts with exit code 1.

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/strings.h"
#include "db/database.h"
#include "db/generators.h"
#include "eval/bounded_eval.h"
#include "logic/parser.h"

namespace {

using namespace bvq;

// Loop-invariant guard: every conjunct is independent of the recursion
// variable, and on a path graph each evaluates to the full cube, so the
// enclosing fixpoint computes plain reachability — but a memo-less
// evaluator pays a dozen kernel sweeps over n^k bits per iteration for it.
const char kInvariantGuard[] =
    "(forall x2 . exists x3 . (E(x2,x3) | x2 = x3)) & "
    "(forall x3 . exists x2 . (E(x2,x3) | x2 = x3)) & "
    "(exists x2 . exists x3 . E(x2,x3)) & "
    "(forall x2 . forall x3 . (E(x2,x3) -> !(x2 = x3)))";

struct Workload {
  std::string name;
  std::string formula;
};

std::vector<Workload> Workloads() {
  const std::string inv = kInvariantGuard;
  return {
      {"lfp_invariant_guard",
       "[lfp T(x1) . P(x1) | ((exists x2 . (E(x1,x2) & T(x2))) & (" + inv +
           "))](x1)"},
      {"nested_lfp_gfp",
       "[gfp G(x1) . (exists x2 . (E(x1,x2) & G(x2))) & "
       "[lfp T(x2) . P(x2) | exists x3 . (E(x2,x3) & T(x3))](x1) & (" +
           inv + ")](x1)"},
      {"ifp_invariant_guard",
       "[ifp I(x1) . P(x1) | ((exists x2 . (E(x1,x2) & I(x2))) & (" + inv +
           "))](x1)"},
      {"pfp_invariant_guard",
       "[pfp F(x1) . P(x1) | ((exists x2 . (E(x1,x2) & F(x2))) & (" + inv +
           "))](x1)"},
  };
}

Database LongPathDb(std::size_t n) {
  Database db(n);
  Status s = db.AddRelation("E", PathGraph(n));
  assert(s.ok());
  RelationBuilder p(1);
  Value last = static_cast<Value>(n - 1);
  p.Add(&last);
  s = db.AddRelation("P", p.Build());
  assert(s.ok());
  (void)s;
  return db;
}

double MinMs(const std::vector<double>& xs) {
  return *std::min_element(xs.begin(), xs.end());
}

struct RunResult {
  double ms = 0;
  AssignmentSet answer;
  EvalStats stats;
};

RunResult Run(const Database& db, const FormulaPtr& f, bool memo,
              std::size_t threads, std::size_t reps) {
  BoundedEvalOptions opts;
  opts.memo = memo;
  opts.num_threads = threads;
  RunResult out;
  std::vector<double> times;
  for (std::size_t r = 0; r < reps; ++r) {
    BoundedEvaluator eval(db, 3, opts);
    const auto start = std::chrono::steady_clock::now();
    auto result = eval.Evaluate(f);
    const auto stop = std::chrono::steady_clock::now();
    if (!result.ok()) {
      std::fprintf(stderr, "eval failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    times.push_back(
        std::chrono::duration<double, std::milli>(stop - start).count());
    out.answer = *result;
    out.stats = eval.stats();
  }
  out.ms = MinMs(times);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = 40;
  std::size_t reps = 3;
  std::size_t threads = 1;
  std::string out_path = "BENCH_memo.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    bool ok = true;
    if (arg.rfind("--n=", 0) == 0) {
      ok = ParseSizeT(arg.substr(4), &n);
    } else if (arg.rfind("--reps=", 0) == 0) {
      ok = ParseSizeT(arg.substr(7), &reps);
    } else if (arg.rfind("--threads=", 0) == 0) {
      ok = ParseSizeT(arg.substr(10), &threads);
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      ok = false;
    }
    if (!ok) {
      std::fprintf(stderr,
                   "usage: bench_memo_ablation [--n=N] [--reps=R] "
                   "[--threads=T] [--out=PATH]\n");
      return 1;
    }
  }

  Database db = LongPathDb(n);
  std::string json = "{\n  \"bench\": \"memo_ablation\",\n";
  json += "  \"config\": {\n";
  json += "    \"domain_size\": " + std::to_string(n) + ",\n";
  json += "    \"k\": 3,\n";
  json += "    \"threads\": " + std::to_string(threads) + ",\n";
  json += "    \"reps\": " + std::to_string(reps) + "\n  },\n";
  json += "  \"workloads\": [\n";

  bool all_identical = true;
  const auto workloads = Workloads();
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    auto f = ParseFormula(workloads[w].formula);
    if (!f.ok()) {
      std::fprintf(stderr, "parse failed (%s): %s\n",
                   workloads[w].name.c_str(),
                   f.status().ToString().c_str());
      return 1;
    }
    RunResult on = Run(db, *f, /*memo=*/true, threads, reps);
    RunResult off = Run(db, *f, /*memo=*/false, threads, reps);
    const bool identical = on.answer == off.answer;
    all_identical = all_identical && identical;
    const double speedup = on.ms > 0 ? off.ms / on.ms : 0;
    std::printf(
        "%-22s memo-on %8.3f ms   memo-off %8.3f ms   speedup %5.2fx   "
        "hits %zu  hoists %zu  copies-avoided %zu  %s\n",
        workloads[w].name.c_str(), on.ms, off.ms, speedup,
        on.stats.memo_hits, on.stats.invariant_hoists,
        on.stats.iterate_copies_avoided,
        identical ? "identical" : "MISMATCH");
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"name\": \"%s\", \"memo_on_ms\": %.4f, \"memo_off_ms\": "
        "%.4f, \"speedup\": %.3f, \"memo_hits\": %zu, \"memo_misses\": "
        "%zu, \"invariant_hoists\": %zu, \"iterate_copies_avoided\": %zu, "
        "\"identical\": %s}%s\n",
        workloads[w].name.c_str(), on.ms, off.ms, speedup,
        on.stats.memo_hits, on.stats.memo_misses,
        on.stats.invariant_hoists, on.stats.iterate_copies_avoided,
        identical ? "true" : "false",
        w + 1 < workloads.size() ? "," : "");
    json += buf;
  }
  json += "  ]\n}\n";

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << json;
  std::printf("wrote %s\n", out_path.c_str());
  return all_identical ? 0 : 1;
}
