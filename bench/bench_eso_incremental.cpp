// ESO sweep ablation: incremental Evaluate (ground once, one solver, n^k
// assumption-based re-solves with a persistent learnt-clause database) vs
// the scratch baseline (fresh grounding + fresh solver per candidate
// tuple, EsoEvalOptions::incremental = false). The workloads carry free
// first-order variables so the sweep is a real n^k answer enumeration, and
// their matrices are dominated by closed subformulas — exactly the shape
// where regrounding per tuple repeats almost all of the work.
//
// Custom main (not google/benchmark) so it can emit the BENCH_eso.json
// record the perf trajectory is tracked with:
//
//   bench_eso_incremental [--n=14] [--reps=3] [--out=BENCH_eso.json]
//                         [--deadline-ms=N] [--mem-budget-mb=N]
//
// Timing is min-of-reps per configuration. Every workload asserts that the
// incremental and scratch AssignmentSet answers are byte-identical before
// any number is written; a mismatch aborts with exit code 1. The optional
// governor limits bound the whole run (one shared clock/account across all
// workloads); a trip aborts with the governor's status and exit code 1.

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/resource.h"
#include "common/strings.h"
#include "db/database.h"
#include "db/generators.h"
#include "eval/eso_eval.h"
#include "logic/parser.h"

namespace {

using namespace bvq;

constexpr std::size_t kNumVars = 2;

struct Workload {
  std::string name;
  std::string graph;  // "cycle" or "path"
  std::string formula;
};

// The closed coloring / independence constraints are shared verbatim by
// every candidate tuple; only the S(x1)/S(x2) literals vary with the rank.
std::vector<Workload> Workloads() {
  return {
      {"independent_pair", "cycle",
       "exists2 S/1 . (S(x1) & S(x2) & "
       "(forall x1 . forall x2 . (E(x1,x2) -> !(S(x1) & S(x2)))))"},
      {"two_coloring_split", "cycle",
       "exists2 C/1 . (C(x1) & !C(x2) & "
       "(forall x1 . forall x2 . (E(x1,x2) -> "
       "((C(x1) & !C(x2)) | (!C(x1) & C(x2))))))"},
      {"selector_cover", "path",
       "exists2 S/2 . (S(x1,x2) & "
       "(forall x1 . exists x2 . (S(x1,x2) & (E(x1,x2) | x1 = x2))) & "
       "(forall x1 . forall x2 . (S(x1,x2) -> (E(x1,x2) | x1 = x2))))"},
  };
}

Database MakeDb(const std::string& graph, std::size_t n) {
  Database db(n);
  Status s = db.AddRelation("E", graph == "cycle" ? CycleGraph(n)
                                                  : PathGraph(n));
  assert(s.ok());
  (void)s;
  return db;
}

double MinMs(const std::vector<double>& xs) {
  return *std::min_element(xs.begin(), xs.end());
}

struct RunResult {
  double ms = 0;
  AssignmentSet answer;
  EsoEvalStats stats;
};

RunResult Run(const Database& db, const FormulaPtr& f, bool incremental,
              std::size_t reps, ResourceGovernor* governor) {
  EsoEvalOptions opts;
  opts.incremental = incremental;
  opts.governor = governor;
  RunResult out;
  std::vector<double> times;
  for (std::size_t r = 0; r < reps; ++r) {
    EsoEvaluator eval(db, kNumVars, opts);
    const auto start = std::chrono::steady_clock::now();
    auto result = eval.Evaluate(f);
    const auto stop = std::chrono::steady_clock::now();
    if (!result.ok()) {
      std::fprintf(stderr, "eval failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    times.push_back(
        std::chrono::duration<double, std::milli>(stop - start).count());
    out.answer = *result;
    out.stats = eval.stats();
  }
  out.ms = MinMs(times);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = 14;
  std::size_t reps = 3;
  std::string out_path = "BENCH_eso.json";
  ResourceGovernor::Limits limits;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::size_t v = 0;
    bool ok = true;
    if (arg.rfind("--n=", 0) == 0) {
      ok = ParseSizeT(arg.substr(4), &n);
    } else if (arg.rfind("--reps=", 0) == 0) {
      ok = ParseSizeT(arg.substr(7), &reps);
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      ok = ParseSizeT(arg.substr(14), &v);
      limits.deadline_ms = v;
    } else if (arg.rfind("--mem-budget-mb=", 0) == 0) {
      ok = ParseSizeT(arg.substr(16), &v);
      limits.mem_budget_bytes = v << 20;
    } else {
      ok = false;
    }
    if (!ok) {
      std::fprintf(stderr,
                   "usage: bench_eso_incremental [--n=N] [--reps=R] "
                   "[--out=PATH] [--deadline-ms=N] [--mem-budget-mb=N]\n");
      return 1;
    }
  }
  ResourceGovernor governor(limits);
  ResourceGovernor* gov =
      (limits.deadline_ms > 0 || limits.mem_budget_bytes > 0) ? &governor
                                                              : nullptr;

  std::string json = "{\n  \"bench\": \"eso_incremental\",\n";
  json += "  \"config\": {\n";
  json += "    \"domain_size\": " + std::to_string(n) + ",\n";
  json += "    \"k\": " + std::to_string(kNumVars) + ",\n";
  json += "    \"reps\": " + std::to_string(reps) + ",\n";
  json += "    \"deadline_ms\": " + std::to_string(limits.deadline_ms) + ",\n";
  json += "    \"mem_budget_bytes\": " +
          std::to_string(limits.mem_budget_bytes) + "\n  },\n";
  json += "  \"workloads\": [\n";

  bool all_identical = true;
  const auto workloads = Workloads();
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    auto f = ParseFormula(workloads[w].formula);
    if (!f.ok()) {
      std::fprintf(stderr, "parse failed (%s): %s\n",
                   workloads[w].name.c_str(), f.status().ToString().c_str());
      return 1;
    }
    Database db = MakeDb(workloads[w].graph, n);
    RunResult inc = Run(db, *f, /*incremental=*/true, reps, gov);
    RunResult scratch = Run(db, *f, /*incremental=*/false, reps, gov);
    const bool identical = inc.answer == scratch.answer;
    all_identical = all_identical && identical;
    const double speedup = inc.ms > 0 ? scratch.ms / inc.ms : 0;
    std::printf(
        "%-18s incremental %8.3f ms   scratch %8.3f ms   speedup %5.2fx   "
        "%zu SAT calls, %zu vs %zu groundings, %llu vs %llu conflicts  %s\n",
        workloads[w].name.c_str(), inc.ms, scratch.ms, speedup,
        inc.stats.sat_calls, inc.stats.groundings, scratch.stats.groundings,
        static_cast<unsigned long long>(inc.stats.solver.conflicts),
        static_cast<unsigned long long>(scratch.stats.solver.conflicts),
        identical ? "identical" : "MISMATCH");
    char buf[640];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"name\": \"%s\", \"incremental_ms\": %.4f, \"scratch_ms\": "
        "%.4f, \"speedup\": %.3f, \"sat_calls\": %zu, "
        "\"incremental_groundings\": %zu, \"scratch_groundings\": %zu, "
        "\"incremental_conflicts\": %llu, \"scratch_conflicts\": %llu, "
        "\"incremental_learned\": %llu, \"deleted_clauses\": %llu, "
        "\"cnf_vars\": %zu, \"cnf_clauses\": %zu, \"identical\": %s}%s\n",
        workloads[w].name.c_str(), inc.ms, scratch.ms, speedup,
        inc.stats.sat_calls, inc.stats.groundings, scratch.stats.groundings,
        static_cast<unsigned long long>(inc.stats.solver.conflicts),
        static_cast<unsigned long long>(scratch.stats.solver.conflicts),
        static_cast<unsigned long long>(inc.stats.solver.learned_clauses),
        static_cast<unsigned long long>(inc.stats.solver.deleted_clauses),
        inc.stats.cnf_vars, inc.stats.cnf_clauses,
        identical ? "true" : "false", w + 1 < workloads.size() ? "," : "");
    json += buf;
  }
  json += "  ]\n}\n";

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << json;
  std::printf("wrote %s\n", out_path.c_str());
  return all_identical ? 0 : 1;
}
