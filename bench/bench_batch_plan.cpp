// Batch query planner bench (DESIGN.md §14): a session submitting N
// overlapping queries as one batch (shared-subformula DAG, shared nodes
// materialized once) vs. the same N queries submitted serially, one
// EvalSync at a time against the same warm-capable session. The queries
// share an expensive fixpoint-with-invariant-guard subtree and differ in a
// cheap disjunct, which is the dashboard shape batching exists for.
//
// Custom main (not google/benchmark) so it can emit the BENCH_batch.json
// record the perf trajectory is tracked with:
//
//   bench_batch_plan [--n=28] [--reps=3] [--out=BENCH_batch.json]
//
// Timing is min-of-reps per batch size (N in {1, 4, 16}). Before any
// number is written, every batched answer is asserted byte-identical to a
// cache-off serial reference run (the seed evaluation path); a mismatch
// aborts with exit code 1. Every multi-query batch must also actually
// share: a plan with dedup ratio 1.0 on the overlapping workload is
// reported as a failure, not a slow run.

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/strings.h"
#include "db/database.h"
#include "db/generators.h"
#include "plan/batch_planner.h"
#include "serve/server.h"

namespace {

using namespace bvq;

// The expensive shared subtree: every query of the batch contains this
// exact lfp-with-guard formula, so the planner finds one DAG node for it
// and the executor computes it once per batch.
const char kInvariantGuard[] =
    "(forall x2 . exists x3 . (E(x2,x3) | x2 = x3)) & "
    "(forall x3 . exists x2 . (E(x2,x3) | x2 = x3)) & "
    "(exists x2 . exists x3 . E(x2,x3)) & "
    "(forall x2 . forall x3 . (E(x2,x3) -> !(x2 = x3)))";

std::vector<std::string> MakeQueries(std::size_t count) {
  const std::string shared = StrCat(
      "[lfp T(x1) . P(x1) | ((exists x2 . (E(x1,x2) & T(x2))) & (",
      kInvariantGuard, "))](x1)");
  // A pool of cheap per-query twists; with more queries than twists the
  // batch also contains exact repeats — both kinds of overlap occur.
  const std::vector<std::string> twists = {
      "E(x1,x1)",
      "exists x2 . E(x1,x2)",
      "exists x2 . E(x2,x1)",
      "x1 = x1",
  };
  std::vector<std::string> queries;
  for (std::size_t i = 0; i < count; ++i) {
    queries.push_back(
        StrCat("(x1) ", shared, " | (", twists[i % twists.size()], ")"));
  }
  return queries;
}

Database LongPathDb(std::size_t n) {
  Database db(n);
  if (!db.AddRelation("E", PathGraph(n)).ok()) std::exit(1);
  RelationBuilder p(1);
  Value last = static_cast<Value>(n - 1);
  p.Add(&last);
  if (!db.AddRelation("P", p.Build()).ok()) std::exit(1);
  return db;
}

double MinMs(const std::vector<double>& xs) {
  return *std::min_element(xs.begin(), xs.end());
}

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

serve::SessionOptions SessionOpts() {
  serve::SessionOptions so;
  so.num_vars = 3;
  so.eval.num_threads = 1;  // measure sharing, not evaluator parallelism
  return so;
}

// Serial pass: one fresh session, the queries one blocking EvalSync at a
// time — the exact traffic a client produces without the batch protocol.
std::vector<std::string> RunSerial(const Database& db,
                                   const std::vector<std::string>& queries,
                                   bool cache, double* ms) {
  serve::Server server;
  serve::SessionOptions so = SessionOpts();
  so.cross_query_cache = cache;
  if (!server.Open("s", so, db).ok()) std::exit(1);
  std::vector<std::string> payloads;
  const auto start = std::chrono::steady_clock::now();
  for (const std::string& query : queries) {
    const serve::EvalOutcome out = server.EvalSync("s", query);
    if (!out.status.ok()) {
      std::fprintf(stderr, "serial eval failed: %s\n",
                   out.status.ToString().c_str());
      std::exit(1);
    }
    payloads.push_back(out.payload);
  }
  *ms = MsSince(start);
  return payloads;
}

// Batched pass: the same queries collected into one batch and planned as a
// shared-subformula DAG before execution.
std::vector<std::string> RunBatched(const Database& db,
                                    const std::vector<std::string>& queries,
                                    double* ms, plan::BatchStats* stats) {
  serve::Server server;
  if (!server.Open("s", SessionOpts(), db).ok()) std::exit(1);
  struct Sink {
    std::mutex mutex;
    std::condition_variable cv;
    std::map<std::uint64_t, std::string> payloads;
    std::size_t failed = 0;
  } sink;
  const auto start = std::chrono::steady_clock::now();
  if (!server.BatchBegin("s").ok()) std::exit(1);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (!server.BatchAddWithId(i + 1, "s", queries[i]).ok()) std::exit(1);
  }
  auto result = server.BatchEnd("s", [&sink](const serve::EvalOutcome& out) {
    {
      std::lock_guard<std::mutex> lock(sink.mutex);
      sink.payloads[out.id] = out.payload;
      if (!out.status.ok()) ++sink.failed;
    }
    sink.cv.notify_all();
  });
  if (!result.ok()) {
    std::fprintf(stderr, "batch end failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  {
    std::unique_lock<std::mutex> lock(sink.mutex);
    sink.cv.wait(lock,
                 [&] { return sink.payloads.size() == queries.size(); });
  }
  *ms = MsSince(start);
  if (sink.failed != 0) {
    std::fprintf(stderr, "%zu batched queries failed\n", sink.failed);
    std::exit(1);
  }
  *stats = *result;
  std::vector<std::string> payloads;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    payloads.push_back(sink.payloads[i + 1]);
  }
  return payloads;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = 28;
  std::size_t reps = 3;
  std::string out_path = "BENCH_batch.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&arg](const char* name) {
      return arg.substr(std::string(name).size());
    };
    bool ok = true;
    if (arg.rfind("--n=", 0) == 0) {
      ok = ParseSizeT(value_of("--n="), &n);
    } else if (arg.rfind("--reps=", 0) == 0) {
      ok = ParseSizeT(value_of("--reps="), &reps);
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = value_of("--out=");
    } else {
      ok = false;
    }
    if (!ok) {
      std::fprintf(stderr,
                   "usage: bench_batch_plan [--n=N] [--reps=R] [--out=PATH]\n");
      return 1;
    }
  }
  if (reps == 0) reps = 1;

  const Database db = LongPathDb(n);
  const std::vector<std::size_t> sizes = {1, 4, 16};
  bool all_identical = true;
  bool all_shared = true;
  std::string rows;

  std::printf("domain n=%zu, k=3, reps=%zu\n", n, reps);
  for (std::size_t size_i = 0; size_i < sizes.size(); ++size_i) {
    const std::size_t count = sizes[size_i];
    const std::vector<std::string> queries = MakeQueries(count);
    // The cache-off serial run is the seed path every mode must reproduce.
    double ref_ms = 0;
    const std::vector<std::string> reference =
        RunSerial(db, queries, /*cache=*/false, &ref_ms);

    std::vector<double> serial_times, batch_times;
    plan::BatchStats stats;
    for (std::size_t r = 0; r < reps; ++r) {
      double serial_ms = 0, batch_ms = 0;
      const auto serial =
          RunSerial(db, queries, /*cache=*/true, &serial_ms);
      const auto batched = RunBatched(db, queries, &batch_ms, &stats);
      serial_times.push_back(serial_ms);
      batch_times.push_back(batch_ms);
      for (std::size_t q = 0; q < count; ++q) {
        all_identical = all_identical && serial[q] == reference[q] &&
                        batched[q] == reference[q];
      }
    }
    if (count > 1 && stats.dedup_ratio <= 1.0) all_shared = false;
    const double serial_ms = MinMs(serial_times);
    const double batch_ms = MinMs(batch_times);
    const double speedup = batch_ms > 0 ? serial_ms / batch_ms : 0;
    std::printf(
        "N=%-3zu off %9.3f ms   serial %9.3f ms   batched %9.3f ms   %5.2fx   "
        "nodes %zu (%zu shared, %zu materialized), %zu stages, dedup %.2f   "
        "%s\n",
        count, ref_ms, serial_ms, batch_ms, speedup, stats.nodes,
        stats.shared_nodes, stats.materialized, stats.stages,
        stats.dedup_ratio, all_identical ? "identical" : "MISMATCH");

    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"queries\": %zu, \"serial_off_ms\": %.4f, "
        "\"serial_ms\": %.4f, \"batched_ms\": %.4f,\n"
        "     \"speedup\": %.3f, \"nodes\": %zu, \"shared_nodes\": %zu,\n"
        "     \"materialized\": %zu, \"stages\": %zu, \"dedup_ratio\": %.3f,\n"
        "     \"identical\": %s}%s\n",
        count, ref_ms, serial_ms, batch_ms, speedup, stats.nodes,
        stats.shared_nodes, stats.materialized, stats.stages,
        stats.dedup_ratio, all_identical ? "true" : "false",
        size_i + 1 < sizes.size() ? "," : "");
    rows += buf;
  }

  std::string json = "{\n  \"bench\": \"batch_plan\",\n";
  json += "  \"config\": {\n";
  json += "    \"domain_size\": " + std::to_string(n) + ",\n";
  json += "    \"k\": 3,\n";
  json += "    \"reps\": " + std::to_string(reps) + ",\n";
  json += "    \"eval_threads\": 1\n  },\n";
  json += "  \"batches\": [\n" + rows + "  ]\n}\n";

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << json;
  std::printf("wrote %s\n", out_path.c_str());
  if (!all_shared) {
    std::fprintf(stderr, "a multi-query batch plan shared nothing\n");
    return 1;
  }
  return all_identical ? 0 : 1;
}
