// Ablation A: "variable minimization as a query optimization methodology"
// (the paper's conclusion) and the introduction's intermediate-size
// argument, measured head-to-head on conjunctive queries:
//
//   - chain queries: naive left-to-right joins vs. Yannakakis vs. the
//     variable-minimized FO^3 rewriting run on the bounded evaluator;
//   - the EMP/MGR/SCY/SAL salary query from the introduction, naive vs.
//     minimized, over growing companies;
//   - planning cost: exact minimum-width search vs. the min-degree
//     heuristic.

#include <benchmark/benchmark.h>

#include "bench_threads.h"
#include "common/rng.h"
#include "db/generators.h"
#include "eval/bounded_eval.h"
#include "optimizer/acyclic.h"
#include "optimizer/conjunctive_query.h"
#include "optimizer/variable_min.h"

namespace {

using namespace bvq;
using namespace bvq::optimizer;

Database ChainDb(std::size_t n, uint64_t seed) {
  Rng rng(seed);
  Database db(n);
  Status s = db.AddRelation(
      "R", RandomGraph(n, 2.5 / static_cast<double>(n), rng));
  assert(s.ok());
  (void)s;
  return db;
}

void BM_Chain_NaiveJoins(benchmark::State& state) {
  const std::size_t len = static_cast<std::size_t>(state.range(0));
  Database db = ChainDb(40, 5);
  ConjunctiveQuery cq = ChainQuery(len, "R");
  CqEvalStats stats;
  for (auto _ : state) {
    stats = CqEvalStats();
    auto r = EvaluateCqNaive(cq, db, &stats);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.counters["max_tuples"] =
      static_cast<double>(stats.max_intermediate_tuples);
  state.counters["max_arity"] =
      static_cast<double>(stats.max_intermediate_arity);
}
BENCHMARK(BM_Chain_NaiveJoins)->DenseRange(2, 6, 2)->Unit(
    benchmark::kMicrosecond);

void BM_Chain_Yannakakis(benchmark::State& state) {
  const std::size_t len = static_cast<std::size_t>(state.range(0));
  Database db = ChainDb(40, 5);
  ConjunctiveQuery cq = ChainQuery(len, "R");
  YannakakisStats stats;
  for (auto _ : state) {
    stats = YannakakisStats();
    auto r = EvaluateYannakakis(cq, db, &stats);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.counters["max_tuples"] =
      static_cast<double>(stats.max_intermediate_tuples);
  state.counters["semijoins"] = static_cast<double>(stats.semijoins);
}
BENCHMARK(BM_Chain_Yannakakis)->DenseRange(2, 6, 2)->Unit(
    benchmark::kMicrosecond);

void BM_Chain_VariableMinimized(benchmark::State& state) {
  const std::size_t len = static_cast<std::size_t>(state.range(0));
  Database db = ChainDb(40, 5);
  ConjunctiveQuery cq = ChainQuery(len, "R");
  auto plan = ExactMinWidthOrder(cq);
  if (!plan.ok()) {
    state.SkipWithError("planning failed");
    return;
  }
  auto rewrite = RewriteWithFewVariables(cq, plan->order);
  if (!rewrite.ok()) {
    state.SkipWithError("rewrite failed");
    return;
  }
  for (auto _ : state) {
    BoundedEvaluator eval(db, rewrite->num_vars, bvq_bench::EvalOptions());
    auto r = eval.EvaluateQuery(rewrite->query);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.counters["k"] = static_cast<double>(rewrite->num_vars);
}
BENCHMARK(BM_Chain_VariableMinimized)
    ->DenseRange(2, 6, 2)
    ->Unit(benchmark::kMicrosecond);

void BM_Chain_EliminationJoins(benchmark::State& state) {
  // The same minimum-width plan executed with sparse relational operators
  // (bucket elimination): bounded-arity intermediates whose size scales
  // with the data rather than with n^k.
  const std::size_t len = static_cast<std::size_t>(state.range(0));
  Database db = ChainDb(40, 5);
  ConjunctiveQuery cq = ChainQuery(len, "R");
  auto plan = ExactMinWidthOrder(cq);
  if (!plan.ok()) {
    state.SkipWithError("planning failed");
    return;
  }
  CqEvalStats stats;
  for (auto _ : state) {
    stats = CqEvalStats();
    auto r = EvaluateByElimination(cq, plan->order, db, &stats);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.counters["max_tuples"] =
      static_cast<double>(stats.max_intermediate_tuples);
  state.counters["max_arity"] =
      static_cast<double>(stats.max_intermediate_arity);
}
BENCHMARK(BM_Chain_EliminationJoins)
    ->DenseRange(2, 6, 2)
    ->Unit(benchmark::kMicrosecond);

// --- the introduction's example -------------------------------------------------

const char* kSalaryQuery =
    "Q(E) :- EMP(E,D), MGR(D,M), SCY(M,C), SAL(E,S1), SAL(C,S2), LT(S1,S2).";

void BM_Intro_NaiveJoins(benchmark::State& state) {
  const std::size_t employees = static_cast<std::size_t>(state.range(0));
  Rng rng(9);
  Database db = EmployeeDatabase(employees, employees / 8 + 1, 24, rng);
  auto cq = ParseCq(kSalaryQuery);
  if (!cq.ok()) {
    state.SkipWithError("parse failed");
    return;
  }
  // A deliberately bad atom order (joins the secretary's salary before
  // connecting the secretary), standing in for the "cross product first"
  // strategy of the paper's introduction.
  std::swap(cq->atoms[1], cq->atoms[4]);
  CqEvalStats stats;
  for (auto _ : state) {
    stats = CqEvalStats();
    auto r = EvaluateCqNaive(*cq, db, &stats);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.counters["max_tuples"] =
      static_cast<double>(stats.max_intermediate_tuples);
  state.counters["max_arity"] =
      static_cast<double>(stats.max_intermediate_arity);
}
BENCHMARK(BM_Intro_NaiveJoins)
    ->RangeMultiplier(2)
    ->Range(32, 256)
    ->Unit(benchmark::kMicrosecond);

void BM_Intro_VariableMinimized(benchmark::State& state) {
  const std::size_t employees = static_cast<std::size_t>(state.range(0));
  Rng rng(9);
  Database db = EmployeeDatabase(employees, employees / 8 + 1, 24, rng);
  auto cq = ParseCq(kSalaryQuery);
  auto plan = ExactMinWidthOrder(*cq);
  if (!plan.ok()) {
    state.SkipWithError("planning failed");
    return;
  }
  auto rewrite = RewriteWithFewVariables(*cq, plan->order);
  if (!rewrite.ok()) {
    state.SkipWithError("rewrite failed");
    return;
  }
  for (auto _ : state) {
    BoundedEvaluator eval(db, rewrite->num_vars, bvq_bench::EvalOptions());
    auto r = eval.EvaluateQuery(rewrite->query);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.counters["k"] = static_cast<double>(rewrite->num_vars);
}
BENCHMARK(BM_Intro_VariableMinimized)
    ->RangeMultiplier(2)
    ->Range(32, 128)
    ->Unit(benchmark::kMicrosecond);

void BM_Intro_EliminationJoins(benchmark::State& state) {
  const std::size_t employees = static_cast<std::size_t>(state.range(0));
  Rng rng(9);
  Database db = EmployeeDatabase(employees, employees / 8 + 1, 24, rng);
  auto cq = ParseCq(kSalaryQuery);
  auto plan = ExactMinWidthOrder(*cq);
  if (!plan.ok()) {
    state.SkipWithError("planning failed");
    return;
  }
  CqEvalStats stats;
  for (auto _ : state) {
    stats = CqEvalStats();
    auto r = EvaluateByElimination(*cq, plan->order, db, &stats);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.counters["max_tuples"] =
      static_cast<double>(stats.max_intermediate_tuples);
  state.counters["max_arity"] =
      static_cast<double>(stats.max_intermediate_arity);
}
BENCHMARK(BM_Intro_EliminationJoins)
    ->RangeMultiplier(2)
    ->Range(32, 256)
    ->Unit(benchmark::kMicrosecond);

// --- planning cost ----------------------------------------------------------------

void BM_Planning_Exact(benchmark::State& state) {
  const std::size_t vars = static_cast<std::size_t>(state.range(0));
  Rng rng(19);
  ConjunctiveQuery cq = RandomCq(vars, vars + 2, 1, "R", rng);
  for (auto _ : state) {
    auto plan = ExactMinWidthOrder(cq);
    if (!plan.ok()) state.SkipWithError("planning failed");
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_Planning_Exact)->DenseRange(4, 12, 2)->Unit(
    benchmark::kMicrosecond);

void BM_Planning_MinDegree(benchmark::State& state) {
  const std::size_t vars = static_cast<std::size_t>(state.range(0));
  Rng rng(19);
  ConjunctiveQuery cq = RandomCq(vars, vars + 2, 1, "R", rng);
  std::size_t width = 0;
  for (auto _ : state) {
    EliminationPlan plan = MinDegreeOrder(cq);
    width = plan.width;
    benchmark::DoNotOptimize(plan);
  }
  state.counters["width"] = static_cast<double>(width);
}
BENCHMARK(BM_Planning_MinDegree)
    ->DenseRange(4, 12, 2)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BVQ_BENCHMARK_MAIN();
