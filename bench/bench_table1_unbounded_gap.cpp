// Table 1 of the paper (complexity of unrestricted query evaluation),
// reproduced as scaling behaviour.
//
// The table's content: for full FO/FP, expression and combined complexity
// (PSPACE / EXPTIME) are exponentially above data complexity (AC^0 /
// PTIME). The mechanism is intermediate-result blow-up: a query with v
// distinct variables can force arity-v intermediates of size n^v.
//
// Series reproduced here:
//   - DataComplexity_*: FIXED query, database size n sweeps -> polynomial
//     growth (the easy row of the table).
//   - ExpressionComplexity_NaiveChain: FIXED database, chain queries with
//     v fresh variables evaluated naively -> time and intermediate size
//     grow exponentially in v (the hard row).
//   - ExpressionComplexity_BoundedChain: the same queries rewritten into
//     FO^3 (Section 2.2's variable reuse) -> linear in v. The gap between
//     these two series IS the gap the paper explains.

#include <benchmark/benchmark.h>

#include "bench_threads.h"
#include "common/rng.h"
#include "db/generators.h"
#include "eval/bounded_eval.h"
#include "eval/naive_eval.h"
#include "logic/builder.h"
#include "logic/parser.h"

namespace {

using namespace bvq;

Database RandomGraphDb(std::size_t n, double p, uint64_t seed) {
  Rng rng(seed);
  Database db(n);
  Status s = db.AddRelation("E", RandomGraph(n, p, rng));
  assert(s.ok());
  (void)s;
  return db;
}

// Chain with fresh variables x1 -> x_{v} via v-1 hops (v variables total).
FormulaPtr FreshChain(std::size_t num_vars) {
  std::vector<FormulaPtr> hops;
  for (std::size_t i = 0; i + 1 < num_vars; ++i) {
    hops.push_back(Atom("E", {i, i + 1}));
  }
  FormulaPtr body = AndAll(std::move(hops));
  for (std::size_t i = num_vars - 1; i >= 1; --i) {
    body = Exists(i, body);
  }
  return body;
}

// Same query in FO^3.
FormulaPtr ReuseChain(std::size_t hops) {
  FormulaPtr phi = Atom("E", {0, 1});
  for (std::size_t i = 1; i < hops; ++i) {
    phi = Exists(2, And(Atom("E", {0, 2}), Exists(0, And(Eq(0, 2), phi))));
  }
  return Exists(1, phi);
}

// --- data complexity: fixed query, growing database ---------------------------

void BM_DataComplexity_FO3(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Database db = RandomGraphDb(n, 8.0 / static_cast<double>(n), 42);
  FormulaPtr query = *ParseFormula(
      "exists x3 . E(x1,x3) & exists x2 . (E(x3,x2) & !(E(x1,x2)))");
  for (auto _ : state) {
    BoundedEvaluator eval(db, 3, bvq_bench::EvalOptions());
    auto r = eval.Evaluate(query);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_DataComplexity_FO3)
    ->RangeMultiplier(2)
    ->Range(8, 128)
    ->Complexity(benchmark::oNCubed)
    ->Unit(benchmark::kMicrosecond);

void BM_DataComplexity_FP3_TransitiveClosure(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Database db = RandomGraphDb(n, 4.0 / static_cast<double>(n), 43);
  FormulaPtr query = *ParseFormula(
      "[lfp T(x1,x2) . E(x1,x2) | exists x3 . (E(x1,x3) & exists x1 . "
      "(x1 = x3 & T(x1,x2)))](x1,x2)");
  std::size_t iterations = 0;
  for (auto _ : state) {
    BoundedEvaluator eval(db, 3, bvq_bench::EvalOptions());
    auto r = eval.Evaluate(query);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    iterations = eval.stats().fixpoint_iterations;
    benchmark::DoNotOptimize(r);
  }
  state.counters["fixpoint_iters"] = static_cast<double>(iterations);
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_DataComplexity_FP3_TransitiveClosure)
    ->RangeMultiplier(2)
    ->Range(8, 64)
    ->Complexity()
    ->Unit(benchmark::kMicrosecond);

// --- expression complexity: fixed database, growing query ---------------------

void BM_ExpressionComplexity_NaiveChain(benchmark::State& state) {
  // Fixed database with 5 nodes and a dense-ish graph: the naive
  // evaluator materializes arity-v intermediates of up to 5^v tuples.
  const std::size_t num_vars = static_cast<std::size_t>(state.range(0));
  Database db = RandomGraphDb(5, 0.6, 44);
  FormulaPtr query = FreshChain(num_vars);
  std::size_t max_tuples = 0;
  for (auto _ : state) {
    NaiveEvaluator eval(db);
    auto r = eval.Evaluate(query);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    max_tuples = eval.stats().max_intermediate_tuples;
    benchmark::DoNotOptimize(r);
  }
  state.counters["query_vars"] = static_cast<double>(num_vars);
  state.counters["max_intermediate_tuples"] =
      static_cast<double>(max_tuples);
}
BENCHMARK(BM_ExpressionComplexity_NaiveChain)
    ->DenseRange(3, 9, 1)
    ->Unit(benchmark::kMicrosecond);

void BM_ExpressionComplexity_BoundedChain(benchmark::State& state) {
  const std::size_t num_vars = static_cast<std::size_t>(state.range(0));
  Database db = RandomGraphDb(5, 0.6, 44);
  FormulaPtr query = ReuseChain(num_vars - 1);  // same hops as FreshChain
  for (auto _ : state) {
    BoundedEvaluator eval(db, 3, bvq_bench::EvalOptions());
    auto r = eval.Evaluate(query);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.counters["query_vars"] = 3;
  state.counters["formula_size"] = static_cast<double>(query->Size());
}
BENCHMARK(BM_ExpressionComplexity_BoundedChain)
    ->DenseRange(3, 9, 1)
    ->Unit(benchmark::kMicrosecond);

// Equivalence spot check at startup (shapes mean nothing if the two
// series compute different answers).
struct SelfCheck {
  SelfCheck() {
    Database db = RandomGraphDb(5, 0.6, 44);
    for (std::size_t v = 3; v <= 6; ++v) {
      NaiveEvaluator naive(db);
      BoundedEvaluator bounded(db, 3);
      auto a = naive.Evaluate(FreshChain(v));
      auto b = bounded.Evaluate(ReuseChain(v - 1));
      if (!a.ok() || !b.ok() || a->rel != b->ToRelation({0})) {
        std::fprintf(stderr, "table1 self-check FAILED at v=%zu\n", v);
        std::abort();
      }
    }
  }
} self_check;

}  // namespace

BVQ_BENCHMARK_MAIN();
