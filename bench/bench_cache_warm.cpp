// Cross-query cache warm-up bench: the session-level AnswerCache
// (DESIGN.md §11) cold vs. warm on a batch of fixpoint queries that a
// client replays against an unchanged database — the repeated-dashboard
// shape the cache exists for. The cold pass runs every query against a
// fresh cache (populating it); the warm pass replays the identical batch,
// where each query's root subtree is a single version-keyed probe instead
// of a fixpoint computation.
//
// Custom main (not google/benchmark) so it can emit the BENCH_cache.json
// record the perf trajectory is tracked with:
//
//   bench_cache_warm [--n=40] [--reps=3] [--threads=1]
//                    [--out=BENCH_cache.json]
//
// Timing is min-of-reps per pass. Before any number is written, every warm
// answer is asserted byte-identical to a cache-off reference run
// (cross_query_cache = false, i.e. the seed evaluation path); a mismatch
// aborts with exit code 1. The warm pass must also actually hit: a warm
// replay with zero cache hits is reported as a failure, not a slow run.

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/resource.h"
#include "common/strings.h"
#include "db/database.h"
#include "db/generators.h"
#include "eval/answer_cache.h"
#include "eval/bounded_eval.h"
#include "logic/parser.h"

namespace {

using namespace bvq;

// Same loop-invariant guard as bench_memo_ablation: each conjunct is
// expensive enough that recomputing a query from scratch costs dozens of
// kernel sweeps, which is exactly what a warm cache hit avoids.
const char kInvariantGuard[] =
    "(forall x2 . exists x3 . (E(x2,x3) | x2 = x3)) & "
    "(forall x3 . exists x2 . (E(x2,x3) | x2 = x3)) & "
    "(exists x2 . exists x3 . E(x2,x3)) & "
    "(forall x2 . forall x3 . (E(x2,x3) -> !(x2 = x3)))";

struct Workload {
  std::string name;
  std::string formula;
};

std::vector<Workload> Workloads() {
  const std::string inv = kInvariantGuard;
  return {
      {"lfp_invariant_guard",
       "[lfp T(x1) . P(x1) | ((exists x2 . (E(x1,x2) & T(x2))) & (" + inv +
           "))](x1)"},
      {"nested_lfp_gfp",
       "[gfp G(x1) . (exists x2 . (E(x1,x2) & G(x2))) & "
       "[lfp T(x2) . P(x2) | exists x3 . (E(x2,x3) & T(x3))](x1) & (" +
           inv + ")](x1)"},
      {"ifp_invariant_guard",
       "[ifp I(x1) . P(x1) | ((exists x2 . (E(x1,x2) & I(x2))) & (" + inv +
           "))](x1)"},
      {"pfp_invariant_guard",
       "[pfp F(x1) . P(x1) | ((exists x2 . (E(x1,x2) & F(x2))) & (" + inv +
           "))](x1)"},
  };
}

Database LongPathDb(std::size_t n) {
  Database db(n);
  Status s = db.AddRelation("E", PathGraph(n));
  assert(s.ok());
  RelationBuilder p(1);
  Value last = static_cast<Value>(n - 1);
  p.Add(&last);
  s = db.AddRelation("P", p.Build());
  assert(s.ok());
  (void)s;
  return db;
}

double MinMs(const std::vector<double>& xs) {
  return *std::min_element(xs.begin(), xs.end());
}

struct PassResult {
  double ms = 0;  // whole-batch wall time
  std::vector<AssignmentSet> answers;
  EvalStats stats;  // summed over the batch
};

// Runs the whole query batch once, sharing `cache` across queries exactly
// the way a serve::Session does (null cache = the cache-off seed path).
PassResult RunBatch(const Database& db, const std::vector<FormulaPtr>& batch,
                    AnswerCache* cache, std::size_t threads) {
  BoundedEvalOptions opts;
  opts.num_threads = threads;
  opts.answer_cache = cache;
  opts.cross_query_cache = cache != nullptr;
  PassResult out;
  const auto start = std::chrono::steady_clock::now();
  for (const FormulaPtr& f : batch) {
    BoundedEvaluator eval(db, 3, opts);
    auto result = eval.Evaluate(f);
    if (!result.ok()) {
      std::fprintf(stderr, "eval failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    out.answers.push_back(*result);
    out.stats.memo_hits += eval.stats().memo_hits;
    out.stats.memo_misses += eval.stats().memo_misses;
    out.stats.cache_hits += eval.stats().cache_hits;
    out.stats.cache_misses += eval.stats().cache_misses;
    out.stats.cache_evictions += eval.stats().cache_evictions;
    out.stats.cache_bytes = eval.stats().cache_bytes;
  }
  const auto stop = std::chrono::steady_clock::now();
  out.ms = std::chrono::duration<double, std::milli>(stop - start).count();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = 40;
  std::size_t reps = 3;
  std::size_t threads = 1;
  std::string out_path = "BENCH_cache.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&arg](const char* name) {
      return arg.substr(std::string(name).size());
    };
    bool ok = true;
    if (arg.rfind("--n=", 0) == 0) {
      ok = ParseSizeT(value_of("--n="), &n);
    } else if (arg.rfind("--reps=", 0) == 0) {
      ok = ParseSizeT(value_of("--reps="), &reps);
    } else if (arg.rfind("--threads=", 0) == 0) {
      ok = ParseSizeT(value_of("--threads="), &threads);
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = value_of("--out=");
    } else {
      ok = false;
    }
    if (!ok) {
      std::fprintf(stderr,
                   "usage: bench_cache_warm [--n=N] [--reps=R] "
                   "[--threads=T] [--out=PATH]\n");
      return 1;
    }
  }
  if (reps == 0) reps = 1;

  Database db = LongPathDb(n);
  std::vector<FormulaPtr> batch;
  std::vector<std::string> names;
  for (const Workload& w : Workloads()) {
    auto f = ParseFormula(w.formula);
    if (!f.ok()) {
      std::fprintf(stderr, "parse failed (%s): %s\n", w.name.c_str(),
                   f.status().ToString().c_str());
      return 1;
    }
    batch.push_back(*f);
    names.push_back(w.name);
  }

  // The seed path the cache must reproduce byte for byte.
  const PassResult reference = RunBatch(db, batch, nullptr, threads);

  // Residency is charged to a session-style governor account, so the bench
  // exercises the same TryCharge path a serve::Session does.
  std::vector<double> cold_times, warm_times;
  PassResult warm_last;
  std::uint64_t warm_hits = 0;
  bool all_identical = true;
  for (std::size_t r = 0; r < reps; ++r) {
    ResourceGovernor governor;
    AnswerCacheOptions cache_options;
    cache_options.governor = &governor;
    AnswerCache cache(cache_options);
    const PassResult cold = RunBatch(db, batch, &cache, threads);
    const PassResult warm = RunBatch(db, batch, &cache, threads);
    cold_times.push_back(cold.ms);
    warm_times.push_back(warm.ms);
    warm_hits = warm.stats.cache_hits;
    for (std::size_t q = 0; q < batch.size(); ++q) {
      all_identical =
          all_identical && cold.answers[q] == reference.answers[q] &&
          warm.answers[q] == reference.answers[q];
    }
    warm_last = warm;
  }
  const double cold_ms = MinMs(cold_times);
  const double warm_ms = MinMs(warm_times);
  const double speedup = warm_ms > 0 ? cold_ms / warm_ms : 0;
  const bool warm_hit = warm_hits > 0;

  std::printf(
      "batch of %zu queries on n=%zu: cold %8.3f ms   warm %8.3f ms   "
      "off %8.3f ms   warm-over-cold %5.2fx   warm cache hits %llu   %s\n",
      batch.size(), n, cold_ms, warm_ms, reference.ms, speedup,
      static_cast<unsigned long long>(warm_hits),
      all_identical ? "identical" : "MISMATCH");
  for (std::size_t q = 0; q < batch.size(); ++q) {
    std::printf("  %-22s %s\n", names[q].c_str(),
                warm_last.answers[q] == reference.answers[q] ? "identical"
                                                             : "MISMATCH");
  }

  std::string json = "{\n  \"bench\": \"cache_warm\",\n";
  json += "  \"config\": {\n";
  json += "    \"domain_size\": " + std::to_string(n) + ",\n";
  json += "    \"k\": 3,\n";
  json += "    \"threads\": " + std::to_string(threads) + ",\n";
  json += "    \"reps\": " + std::to_string(reps) + ",\n";
  json += "    \"queries\": " + std::to_string(batch.size()) + ",\n";
  json += "    \"memo\": true,\n    \"cross_query_cache\": true\n  },\n";
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "  \"cold_ms\": %.4f,\n  \"warm_ms\": %.4f,\n  \"off_ms\": %.4f,\n"
      "  \"speedup\": %.3f,\n  \"warm_cache_hits\": %llu,\n"
      "  \"cache_resident_bytes\": %zu,\n  \"identical\": %s,\n",
      cold_ms, warm_ms, reference.ms, speedup,
      static_cast<unsigned long long>(warm_hits),
      warm_last.stats.cache_bytes, all_identical ? "true" : "false");
  json += buf;
  json += "  \"workloads\": [\n";
  for (std::size_t q = 0; q < batch.size(); ++q) {
    json += "    {\"name\": \"" + names[q] + "\", \"identical\": " +
            (warm_last.answers[q] == reference.answers[q] ? "true" : "false") +
            std::string(q + 1 < batch.size() ? "}," : "}") + "\n";
  }
  json += "  ]\n}\n";

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << json;
  std::printf("wrote %s\n", out_path.c_str());
  if (!warm_hit) {
    std::fprintf(stderr, "warm pass never hit the cache\n");
    return 1;
  }
  return all_identical ? 0 : 1;
}
